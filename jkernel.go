// Package jkernel is a Go implementation of the J-Kernel, the
// capability-based protection system of Hawblitzel, Chang, Czajkowski, Hu,
// and von Eicken, "Implementing Multiple Protection Domains in Java"
// (USENIX Annual Technical Conference, 1998).
//
// A Kernel hosts multiple protection domains inside one process (the
// paper's "single JVM"). Protection is language-based: domains own
// separate class namespaces on a built-in typed VM (see the vm
// subdirectory facade), communicate only through revocable capabilities,
// and cross-domain calls copy every non-capability argument. The package
// also exposes the native path, where domains host plain Go objects behind
// the same capability discipline.
//
// Quick start:
//
//	k := jkernel.New(jkernel.Options{})
//	server, _ := k.NewDomain(jkernel.DomainConfig{Name: "server"})
//	client, _ := k.NewDomain(jkernel.DomainConfig{Name: "client"})
//
//	cap, _ := k.CreateNativeCapability(server, &MyService{})
//	k.Repository().Bind("svc", cap)
//
//	task := k.NewTask(client, "main")
//	defer task.Close()
//	res, err := cap.Invoke("Greet", "world")
//
// See the examples directory for complete programs, including VM-hosted
// domains that load verified bytecode, the revocable file-system service
// of the paper's §2, and the extensible web server of §4.
package jkernel

import (
	"net/http"

	"jkernel/internal/account"
	"jkernel/internal/core"
	"jkernel/internal/remote"
	"jkernel/internal/sched"
	"jkernel/internal/telemetry"
	"jkernel/internal/vmkit"
	"jkernel/servlet"
)

// Core types, re-exported from the implementation. The aliases keep one
// canonical type identity across the public and internal layers.
type (
	// Kernel is one J-Kernel instance: a VM plus its protection domains.
	Kernel = core.Kernel
	// Options configures New.
	Options = core.Options
	// Domain is a protection domain.
	Domain = core.Domain
	// DomainConfig describes a new domain.
	DomainConfig = core.DomainConfig
	// Capability is the revocable handle on a remote object.
	Capability = core.Capability
	// SharedClass is an exported group of classes.
	SharedClass = core.SharedClass
	// Repository is the system-wide capability name service.
	Repository = core.Repository
	// Task binds a goroutine to a domain for making calls.
	Task = core.Task
	// RemoteError is a copied callee failure.
	RemoteError = core.RemoteError
	// Future is the pending result of an asynchronous invocation
	// (Capability.InvokeAsync / InvokeAsyncFrom): resolve-once, fault
	// propagation identical to Invoke, revocation-aware, cancellable.
	Future = core.Future
	// Stats is a domain's resource-accounting snapshot.
	Stats = account.Stats
	// Profile selects the VM cost profile.
	Profile = vmkit.Profile

	// RemoteConn is a kernel-to-kernel connection: capabilities imported
	// over it are proxies indistinguishable from local capabilities.
	RemoteConn = remote.Conn
	// RemoteTableSizes is a snapshot of one connection's table occupancy
	// (RemoteConn.TableSizes) — leak diagnostics for long-lived links.
	RemoteTableSizes = remote.TableSizes
	// RemoteListener serves a kernel's exports to remote kernels.
	RemoteListener = remote.Listener
	// WorkerPool supervises worker kernel processes, restarting crashes.
	WorkerPool = remote.Pool
	// WorkerPoolOptions configures StartWorkerPool.
	WorkerPoolOptions = remote.PoolOptions
	// WorkerConfig describes one worker kernel process (see RunWorker).
	WorkerConfig = remote.WorkerConfig

	// MetricsRegistry is a kernel's (or the process-global) instrument
	// registry: counters, gauges, latency histograms, call-graph edges,
	// and the event log.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is one registry's point-in-time reading.
	MetricsSnapshot = telemetry.Snapshot
	// Tracer records completed spans (recent ring + slow-call log).
	Tracer = telemetry.Tracer
	// TraceContext identifies the trace a call chain belongs to; it
	// propagates across the wire inside invoke frames.
	TraceContext = telemetry.TraceContext
	// Span is one recorded cross-domain (or cross-kernel) call.
	Span = telemetry.Span
)

// Sentinel errors.
var (
	// ErrRevoked reports use of a revoked capability.
	ErrRevoked = core.ErrRevoked
	// ErrDomainTerminated reports a call into or out of a dead domain.
	ErrDomainTerminated = core.ErrDomainTerminated
	// ErrNotRemote reports a capability target with no remote surface.
	ErrNotRemote = core.ErrNotRemote
	// ErrNoSuchMethod reports an unknown remote method name.
	ErrNoSuchMethod = core.ErrNoSuchMethod
	// ErrNotEntered reports a call from a goroutine without a Task.
	ErrNotEntered = core.ErrNotEntered
	// ErrCancelled reports a future abandoned via Future.Cancel.
	ErrCancelled = core.ErrCancelled
)

// WaitAll joins a fan-out of futures, returning the first error (in
// argument order), or nil when every call succeeded.
func WaitAll(futures ...*Future) error {
	return core.WaitAll(futures...)
}

// VM cost profiles (Table 1 models two commercial JVMs).
var (
	// ProfileA models MS-VM: slow interface dispatch, cheap locks.
	ProfileA = vmkit.ProfileA
	// ProfileB models Sun-VM: fast interface dispatch, heavy locks.
	ProfileB = vmkit.ProfileB
)

// New creates a kernel. It panics only on internal bootstrap corruption;
// user-level failures surface from domain and capability constructors.
func New(opts Options) *Kernel {
	return core.MustNew(opts)
}

// NewKernel creates a kernel, reporting bootstrap errors.
func NewKernel(opts Options) (*Kernel, error) {
	return core.New(opts)
}

// Assemble compiles VM assembly source into binary class-file bytes,
// loadable through DomainConfig.Classes or Domain.DefineClass.
func Assemble(src string) ([]byte, error) {
	return vmkit.AssembleBytes(src)
}

// MustAssemble is Assemble that panics on error (for class sources
// compiled into the program).
func MustAssemble(src string) []byte {
	b, err := vmkit.AssembleBytes(src)
	if err != nil {
		panic(err)
	}
	return b
}

// Remote kernels. A supervisor kernel Listens (serving the capabilities it
// has Exported via Kernel.Export) and Connects to worker kernels in other
// processes; Import on the connection yields a proxy capability whose
// Invoke/Bind/Revoke behave exactly like a local capability's, with
// revocation and termination propagated across the wire and a lost worker
// surfacing as ErrRevoked, never as a supervisor crash. See
// examples/cluster and cmd/jkworker.

// Listen serves k's exported capabilities on network/addr ("tcp" or
// "unix") in the background.
func Listen(k *Kernel, network, addr string) (*RemoteListener, error) {
	return remote.Listen(k, network, addr)
}

// Connect dials a remote kernel; Import on the returned connection
// retrieves proxies for the peer's exports.
func Connect(k *Kernel, network, addr string) (*RemoteConn, error) {
	return remote.Dial(k, network, addr)
}

// ReleaseProxy severs a capability imported over a RemoteConn, returning
// its wire reference so the exporting kernel can drop its table entry
// once every handle is gone. Call it when a domain is done with an
// imported capability; releasing is revocation of the local handle only —
// the exporter's capability stays live, and importing it again yields a
// fresh, working proxy. Reports whether cap was a live wire proxy.
func ReleaseProxy(cap *Capability) bool {
	return remote.ReleaseProxy(cap)
}

// Three-party handoff. When a capability imported from kernel A is
// re-exported to kernel C, the middleman mints a redeemable ticket and C
// silently shortens the route to a direct A–C import (falling back to the
// two-hop relay when A is unreachable or predates the handoff frames).
// Shortening is on by default and fully transparent; these helpers exist
// for deployments that need to steer or observe it.

// Advertise records k's dialable listen endpoint, announced to peers so
// re-exports of k's capabilities can be shortened back to it. Listen and
// RunWorker already call it; call it directly only for hand-built
// listeners (NewListener over an existing net.Listener).
func Advertise(k *Kernel, network, addr string) {
	remote.Advertise(k, network, addr)
}

// SetHandoff enables or disables three-party handoff for kernel k (on by
// default). Disabled, k mints no tickets and ignores offers, pinning
// every re-export through it to the relay path.
func SetHandoff(k *Kernel, enabled bool) {
	remote.SetHandoff(k, enabled)
}

// HandoffDone reports whether cap is an imported capability whose route
// has been shortened by a redeemed handoff ticket: it now invokes the
// origin kernel directly instead of relaying through the kernel that
// re-exported it.
func HandoffDone(cap *Capability) bool {
	return remote.HandoffDone(cap)
}

// StartWorkerPool spawns and supervises worker kernel processes. With no
// Command option the current binary re-executes itself; pair with
// MaybeRunWorker at the top of main.
func StartWorkerPool(opts WorkerPoolOptions) (*WorkerPool, error) {
	return remote.StartPool(opts)
}

// RunWorker boots a worker kernel and serves it until the process exits.
func RunWorker(cfg WorkerConfig) error {
	return remote.RunWorker(cfg)
}

// MaybeRunWorker turns the process into a worker kernel when spawned by a
// worker pool (the worker env var is set), and returns immediately
// otherwise. Call it first thing in main.
func MaybeRunWorker(setup func(k *Kernel) error) {
	remote.MaybeRunWorker(setup)
}

// Cluster control plane. A Cluster schedules servlets across a
// supervised worker pool: pluggable placement (least-loaded,
// consistent-hash, round-robin), queue-depth/latency autoscaling between
// Min/Max workers, and health-driven draining with automatic failover —
// a crashed worker's servlets are re-placed onto survivors within a
// probe interval, and a sticky strategy pulls them home when the worker
// returns. Pair StartCluster in the supervisor with ServeClusterWorker
// in the worker setup passed to MaybeRunWorker. See examples/cluster and
// cmd/jkhttpd -workers.

type (
	// Cluster is a running control plane (internal/sched.Scheduler).
	Cluster = sched.Scheduler
	// ClusterOptions configures StartCluster.
	ClusterOptions = sched.Options
	// ClusterAutoscale tunes the pool-sizing feedback loop.
	ClusterAutoscale = sched.AutoscaleConfig
	// ClusterSnapshot is the control plane's point-in-time state.
	ClusterSnapshot = sched.Snapshot
	// PlacementStrategy decides which worker hosts a servlet.
	PlacementStrategy = sched.Strategy
	// DeploySpec is the portable unit of placement.
	DeploySpec = sched.DeploySpec
	// ClusterDeployer is the worker-side servlet factory.
	ClusterDeployer = sched.Deployer
)

// Placement strategies.
var (
	// LeastLoaded places on the worker with the fewest in-flight calls.
	LeastLoaded = sched.LeastLoaded
	// RoundRobin cycles placements across workers (the baseline).
	RoundRobin = sched.RoundRobin
	// ConsistentHash binds each servlet name to a ring position: stable
	// across restarts, sticky after failover.
	ConsistentHash = sched.ConsistentHash
)

// StrategyByName resolves a PlacementStrategy from its name — the flag
// surface of cmd/jkhttpd and cmd/jkbench.
func StrategyByName(name string) (PlacementStrategy, error) {
	return sched.ByName(name)
}

// StartCluster launches a control plane over opts.Bridge: it spawns the
// worker pool, installs itself as the bridge's admin control (uploads
// shard across workers), and runs the health/autoscale loop until Close.
func StartCluster(opts ClusterOptions) (*Cluster, error) {
	return sched.Start(opts)
}

// ClusterStats snapshots a cluster: workers with drain states, servlet
// placements, and scale/replacement counters. The same data is live in
// /debug/jk (gauges sched.* plus the event log).
func ClusterStats(c *Cluster) ClusterSnapshot {
	return c.Snapshot()
}

// ServeClusterWorker installs the worker half on kernel k: a deployer the
// control plane drives over the wire. natives maps factory names to Go
// servlet constructors; VM bundles deploy with no registration. Call it
// from the setup function passed to MaybeRunWorker.
func ServeClusterWorker(k *Kernel, natives map[string]func() servlet.Servlet) (*ClusterDeployer, error) {
	return sched.ServeWorker(k, natives)
}

// Observability. Every kernel carries a metrics registry and a tracer
// unless built with Options.DisableTelemetry; pool supervision metrics
// land in the process-global registry (ProcessMetrics). DebugHandler and
// StartDebugServer expose it all over HTTP as /debug/jk.

// Metrics returns k's metrics registry (nil when telemetry is disabled;
// every registry method is safe on nil).
func Metrics(k *Kernel) *MetricsRegistry {
	return k.Telemetry()
}

// Traces returns k's span recorder (nil when telemetry is disabled).
func Traces(k *Kernel) *Tracer {
	return k.Tracer()
}

// ProcessMetrics returns the process-global registry: pool supervision
// events and anything else not tied to one kernel.
func ProcessMetrics() *MetricsRegistry {
	return telemetry.Default()
}

// DebugHandler serves k's live telemetry as JSON: a full snapshot plus
// recent and slow spans by default, one stitched trace with ?trace=<id>.
// Mount it wherever the host process serves HTTP (conventionally at
// /debug/jk).
func DebugHandler(k *Kernel) http.Handler {
	return DebugHandlerWith(k, nil)
}

// DebugHandlerWith is DebugHandler plus a remote-span source: a
// /debug/jk?trace=<id> query merges remoteSpans(traceID) into the local
// spans — the hook a supervisor uses to stitch worker-process spans into
// one trace.
func DebugHandlerWith(k *Kernel, remoteSpans func(traceID uint64) []Span) http.Handler {
	cfg := telemetry.HandlerConfig{
		Registries:  []*MetricsRegistry{telemetry.Default()},
		RemoteSpans: remoteSpans,
	}
	if r := k.Telemetry(); r != nil {
		cfg.Registries = append(cfg.Registries, r)
	}
	if t := k.Tracer(); t != nil {
		cfg.Tracers = append(cfg.Tracers, t)
	}
	return telemetry.Handler(cfg)
}

// FormatTraceID renders a trace (or span) id as the hex string /debug/jk
// uses; ParseTraceID reverses it.
func FormatTraceID(id uint64) string { return telemetry.FormatID(id) }

// ParseTraceID parses FormatTraceID output.
func ParseTraceID(s string) (uint64, error) { return telemetry.ParseID(s) }

// StartDebugServer serves DebugHandler plus the Go profiler
// (/debug/pprof/) on a TCP address, returning the bound address.
func StartDebugServer(k *Kernel, addr string) (string, error) {
	a, err := remote.StartDebugServer(k, addr)
	if err != nil {
		return "", err
	}
	return a.String(), nil
}
