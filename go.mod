module jkernel

go 1.24
