// Command jkrun loads class files into a fresh protection domain and runs
// a static main method — a miniature "java" launcher for the vmkit world.
//
//	jkrun -main Hello.main Hello.jkc Util.jkc
//
// The entry method must have descriptor ()V or ()I.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"jkernel"
	"jkernel/internal/vmkit"
)

func main() {
	entry := flag.String("main", "", "entry point as Class.method (default: first class's main)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: jkrun [-main Class.method] file.jkc...")
		os.Exit(2)
	}

	classes := map[string][]byte{}
	first := ""
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		def, err := vmkit.DecodeClass(data)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		classes[def.Name] = data
		if first == "" {
			first = def.Name
		}
	}

	k := jkernel.New(jkernel.Options{Stdout: os.Stdout})
	d, err := k.NewDomain(jkernel.DomainConfig{
		Name:    "main",
		Classes: classes,
		Output:  os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}

	className, methodName := first, "main"
	if *entry != "" {
		i := strings.LastIndexByte(*entry, '.')
		if i < 0 {
			log.Fatalf("bad -main %q (want Class.method)", *entry)
		}
		className, methodName = (*entry)[:i], (*entry)[i+1:]
	}

	task := k.NewTask(d, "main")
	defer task.Close()
	for _, desc := range []string{"()V", "()I"} {
		cls, err := d.NS.Resolve(className)
		if err != nil {
			log.Fatal(err)
		}
		if cls.MethodBySig(methodName, desc) == nil {
			continue
		}
		v, err := task.CallStatic(className + "." + methodName + ":" + desc)
		if err != nil {
			log.Fatalf("%s.%s: %v", className, methodName, err)
		}
		if desc == "()I" {
			fmt.Println(v.I)
		}
		return
	}
	log.Fatalf("no %s.%s with descriptor ()V or ()I", className, methodName)
}
