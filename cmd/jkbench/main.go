// Command jkbench regenerates the paper's evaluation tables (1-6) in their
// original row/column format, alongside the published numbers, so shape
// comparisons are direct; table 7 extends the evaluation to the remote
// kernels subsystem (local LRMI vs cross-process capability invocation,
// the Table 2-vs-3 contrast made concrete), table 8 measures sync
// per-call against async-batched remote invocation, and table 9 measures
// capability churn (export → inline import → invoke → release) and
// verifies the per-connection tables return to baseline — the export-GC
// leak gate as a benchmark. Table 10 measures telemetry overhead, table
// 11 measures the three-party handoff: a re-exported capability called
// through the middleman relay vs over the shortened (redeemed) path vs a
// directly-dialed baseline, and table 12 measures the wire hot path
// itself — µs/call AND allocs/call for sync, async-batched, and
// 1 KiB-payload invokes, with the generated marshaler toggled against the
// reflect walker. Table 13 is the cluster load harness: thousands of
// concurrent HTTP clients against fixed-capacity servlet shards, served
// by a scheduled 4-worker pool vs a single worker — throughput and
// p50/p99, with the speedup gated by -cluster-gate. See EXPERIMENTS.md
// for the recorded results.
//
//	jkbench                  # all tables
//	jkbench -table 4         # one table
//	jkbench -table 8,11,12   # several (the perf-gate baseline set)
//	jkbench -quick           # fewer iterations (CI-friendly)
//	jkbench -json BENCH.json # also write measured rows as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jkernel/internal/core"
	"jkernel/internal/httpd"
	"jkernel/internal/oskit"
	"jkernel/internal/remote"
	"jkernel/internal/seri"
	"jkernel/internal/ukern"
	"jkernel/internal/vmkit"
)

var (
	tableFlag = flag.String("table", "", "comma-separated tables to run (1-13), e.g. 8 or 8,11,12; empty = all")
	quick     = flag.Bool("quick", false, "fewer iterations")
	jsonFlag  = flag.String("json", "", "write measured rows (remote tables 7-13) as JSON to this file")
	gateFlag  = flag.Float64("telemetry-gate", 0,
		"fail (exit 1) if table 10's telemetry on/off ratio exceeds this (0 = no gate; CI uses 1.10)")
	clusterGateFlag = flag.Float64("cluster-gate", 0,
		"fail (exit 1) if table 13's 4-worker/1-worker throughput ratio falls below this (0 = no gate; CI uses 3.0)")
)

func main() {
	oskit.MaybeRunChild()
	remote.MaybeRunWorker(remoteBenchSetup)
	flag.Parse()
	want := map[int]bool{}
	for _, s := range strings.Split(*tableFlag, ",") {
		s = strings.TrimSpace(s)
		if s == "" || s == "0" {
			continue
		}
		n, err := strconv.Atoi(s)
		check(err)
		want[n] = true
	}
	run := func(n int, f func()) {
		if len(want) == 0 || want[n] {
			f()
		}
	}
	run(1, table1)
	run(2, table2)
	run(3, table3)
	run(4, table4)
	run(5, table5)
	run(6, table6)
	run(7, table7)
	run(8, table8)
	run(9, table9)
	run(10, table10)
	run(11, table11)
	run(12, table12)
	run(13, table13)
	if *jsonFlag != "" {
		writeBenchJSON(*jsonFlag)
	}
	if *gateFlag > 0 && telemetryRatio > *gateFlag {
		fmt.Fprintf(os.Stderr, "jkbench: telemetry overhead gate FAILED: on/off ratio %.3f > %.3f\n",
			telemetryRatio, *gateFlag)
		os.Exit(1)
	}
	if *clusterGateFlag > 0 && clusterRatio < *clusterGateFlag {
		fmt.Fprintf(os.Stderr, "jkbench: cluster throughput gate FAILED: 4-worker/1-worker ratio %.2f < %.2f\n",
			clusterRatio, *clusterGateFlag)
		os.Exit(1)
	}
}

// --- machine-readable results (the BENCH_*.json perf trajectory) -----------

// benchRow is one measured configuration.
type benchRow struct {
	Table     int     `json:"table"`
	Name      string  `json:"name"`
	MicrosPer float64 `json:"us_per_op,omitempty"`
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	AllocsPer float64 `json:"allocs_per_op,omitempty"`
	Ratio     float64 `json:"ratio,omitempty"`
	// Load-test latency columns (table 13). Informational: tail latency
	// under saturation is queue-shaped, so the perf gate reads the
	// throughput column instead.
	MillisP50 float64 `json:"p50_ms,omitempty"`
	MillisP99 float64 `json:"p99_ms,omitempty"`
}

var benchRows []benchRow

// record captures a measured row for the JSON artifact.
func record(table int, name string, us float64) {
	row := benchRow{Table: table, Name: name, MicrosPer: us}
	if us > 0 {
		row.OpsPerSec = 1e6 / us
	}
	benchRows = append(benchRows, row)
}

// recordAllocs is record plus an allocations-per-op column (table 12).
func recordAllocs(table int, name string, us, allocs float64) {
	row := benchRow{Table: table, Name: name, MicrosPer: us, AllocsPer: allocs}
	if us > 0 {
		row.OpsPerSec = 1e6 / us
	}
	benchRows = append(benchRows, row)
}

// recordRatio captures a derived speedup row.
func recordRatio(table int, name string, ratio float64) {
	benchRows = append(benchRows, benchRow{Table: table, Name: name, Ratio: ratio})
}

func writeBenchJSON(path string) {
	doc := struct {
		Generated string     `json:"generated"`
		Quick     bool       `json:"quick"`
		Rows      []benchRow `json:"rows"`
	}{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Quick:     *quick,
		Rows:      benchRows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	check(err)
	check(os.WriteFile(path, append(data, '\n'), 0o644))
}

func iters(base int) int {
	if *quick {
		return base / 10
	}
	return base
}

// measure times f(n) and returns µs per iteration.
func measure(n int, f func(n int)) float64 {
	f(n / 10) // warm-up
	start := time.Now()
	f(n)
	return float64(time.Since(start).Microseconds()) / float64(n)
}

// measureAllocs times f(n) and returns µs and heap allocations per
// iteration. The allocation count is process-wide (Mallocs delta across
// the run), deliberately: for the wire hot path the number that matters
// is every allocation a call costs on either side of the in-process
// loopback — read loops, flusher, and executor included.
func measureAllocs(n int, f func(n int)) (usPer, allocsPer float64) {
	f(n / 10) // warm-up; also primes the frame-buffer pools
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	f(n)
	usPer = float64(time.Since(start).Microseconds()) / float64(n)
	runtime.ReadMemStats(&m1)
	return usPer, float64(m1.Mallocs-m0.Mallocs) / float64(n)
}

// measureEach times f once per iteration.
func measureEach(n int, f func()) float64 {
	return measure(n, func(n int) {
		for i := 0; i < n; i++ {
			f()
		}
	})
}

// --- shared VM fixture (same classes as bench_test.go) --------------------

const (
	svcIface = `
.class Svc interface implements jk/kernel/Remote
.method nop ()V
.end
.method add3 (III)I
.end
.method sink (LMsgS;)I
.end
.method sinkF (LMsgF;)I
.end
`
	msgS = ".class MsgS implements jk/io/Serializable\n.field payload [B\n.field next LMsgS;\n"
	msgF = ".class MsgF implements jk/io/FastCopy\n.field payload [B\n.field next LMsgF;\n"

	svcImpl = `
.class SvcImpl implements Svc
.method nop ()V stack 2 locals 0
  ret
.end
.method add3 (III)I stack 6 locals 0
  load 1
  load 2
  iadd
  load 3
  iadd
  retv
.end
.method sink (LMsgS;)I stack 2 locals 0
  iconst 1
  retv
.end
.method sinkF (LMsgF;)I stack 2 locals 0
  iconst 1
  retv
.end
`
	clientIface  = ".class LocalIface interface\n.method inop ()V\n.end\n"
	clientTarget = `
.class LocalTarget implements LocalIface
.method nop ()V stack 2 locals 0
  ret
.end
.method inop ()V stack 2 locals 0
  ret
.end
`
	clientBench = `
.class Bench
.field static cap LSvc;
.field static target LLocalTarget;
.method static setup ()V stack 4 locals 0
  sconst "svc"
  invokestatic jk/kernel/Repository.lookup:(Ljk/lang/String;)Ljk/kernel/Capability;
  cast Svc
  putstatic Bench.cap:LSvc;
  new LocalTarget
  putstatic Bench.target:LLocalTarget;
  ret
.end
.method static runRegular (I)V stack 8 locals 1
loop:
  load 0
  ifz done
  getstatic Bench.target:LLocalTarget;
  invokevirtual LocalTarget.nop:()V
  load 0
  iconst 1
  isub
  store 0
  jmp loop
done:
  ret
.end
.method static runIface (I)V stack 8 locals 1
loop:
  load 0
  ifz done
  getstatic Bench.target:LLocalTarget;
  invokeinterface LocalIface.inop:()V
  load 0
  iconst 1
  isub
  store 0
  jmp loop
done:
  ret
.end
.method static runLock (I)V stack 8 locals 1
loop:
  load 0
  ifz done
  getstatic Bench.target:LLocalTarget;
  monitorenter
  getstatic Bench.target:LLocalTarget;
  monitorexit
  load 0
  iconst 1
  isub
  store 0
  jmp loop
done:
  ret
.end
.method static runLRMI (I)V stack 8 locals 1
loop:
  load 0
  ifz done
  getstatic Bench.cap:LSvc;
  invokeinterface Svc.nop:()V
  load 0
  iconst 1
  isub
  store 0
  jmp loop
done:
  ret
.end
.method static runLRMI3 (I)V stack 10 locals 1
loop:
  load 0
  ifz done
  getstatic Bench.cap:LSvc;
  iconst 1
  iconst 2
  iconst 3
  invokeinterface Svc.add3:(III)I
  pop
  load 0
  iconst 1
  isub
  store 0
  jmp loop
done:
  ret
.end
`
)

func mustBytes(src string) []byte {
	b, err := vmkit.AssembleBytes(src)
	if err != nil {
		panic(err)
	}
	return b
}

type fixture struct {
	k      *core.Kernel
	client *core.Domain
	task   *core.Task
	cap    *core.Capability
}

func newFixture(profile vmkit.Profile) *fixture {
	k := core.MustNew(core.Options{Profile: profile})
	server, err := k.NewDomain(core.DomainConfig{
		Name: "server",
		Classes: map[string][]byte{
			"Svc": mustBytes(svcIface), "SvcImpl": mustBytes(svcImpl),
			"MsgS": mustBytes(msgS), "MsgF": mustBytes(msgF),
		},
	})
	check(err)
	sc, err := k.ShareClasses(server, "Svc", "MsgS", "MsgF")
	check(err)
	client, err := k.NewDomain(core.DomainConfig{
		Name: "client",
		Classes: map[string][]byte{
			"LocalIface": mustBytes(clientIface), "LocalTarget": mustBytes(clientTarget),
			"Bench": mustBytes(clientBench),
		},
		Shared: []*core.SharedClass{sc},
	})
	check(err)
	setup := k.NewDetachedTask(server, "setup")
	target, err := server.NewInstance("SvcImpl")
	check(err)
	cap, err := k.CreateVMCapability(server, target)
	check(err)
	check(k.Repository().Bind("svc", cap))
	setup.Close()
	task := k.NewDetachedTask(client, "bench")
	_, err = task.CallStatic("Bench.setup:()V")
	check(err)
	return &fixture{k: k, client: client, task: task, cap: cap}
}

func (f *fixture) loop(method string) func(int) {
	return func(n int) {
		if _, err := f.task.CallStatic("Bench."+method+":(I)V", vmkit.IntVal(int64(n))); err != nil {
			check(err)
		}
	}
}

func (f *fixture) chain(class string, count, size int) *vmkit.Object {
	var head *vmkit.Object
	for i := 0; i < count; i++ {
		node, err := f.client.NewInstance(class)
		check(err)
		arr, err := f.client.NS.NewArray("[B", size)
		check(err)
		node.Fields[node.Class.FieldByName("payload").Slot] = vmkit.RefVal(arr)
		if head != nil {
			node.Fields[node.Class.FieldByName("next").Slot] = vmkit.RefVal(head)
		}
		head = node
	}
	return head
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "jkbench:", err)
		os.Exit(1)
	}
}

// --- tables ----------------------------------------------------------------

func table1() {
	fmt.Println("Table 1. Cost of null method invocations (in µs)")
	fmt.Println("  paper columns: MS-VM / Sun-VM on 200MHz Pentium-Pro;")
	fmt.Println("  ours: profile vm-A (MS-VM cost shape) / vm-B (Sun-VM cost shape)")
	fa := newFixture(vmkit.ProfileA)
	fb := newFixture(vmkit.ProfileB)
	n := iters(300000)
	rows := []struct {
		name           string
		paperA, paperB float64
		method         string
	}{
		{"Regular method invocation", 0.04, 0.03, "runRegular"},
		{"Interface method invocation", 0.54, 0.05, "runIface"},
		{"Acquire/release lock", 0.20, 1.91, "runLock"},
		{"J-Kernel LRMI", 2.22, 5.41, "runLRMI"},
	}
	fmt.Printf("  %-30s %10s %10s %10s %10s\n", "Operation", "paper-MS", "paper-Sun", "vm-A", "vm-B")
	for _, r := range rows {
		nn := n
		if r.method == "runLRMI" {
			nn = iters(50000)
		}
		a := measure(nn, fa.loop(r.method))
		b := measure(nn, fb.loop(r.method))
		fmt.Printf("  %-30s %10.2f %10.2f %10.3f %10.3f\n", r.name, r.paperA, r.paperB, a, b)
	}
	// Thread info lookup is measured outside bytecode, as in the stubs.
	la := measureEach(iters(2000000), func() { fa.k.VM.LookupThread(fa.task.Thread.ID) })
	lb := measureEach(iters(2000000), func() { fb.k.VM.LookupThread(fb.task.Thread.ID) })
	fmt.Printf("  %-30s %10.2f %10.2f %10.3f %10.3f\n", "Thread info lookup", 0.55, 0.29, la, lb)
	fmt.Println()
}

func table2() {
	fmt.Println("Table 2. Local RPC costs using standard OS mechanisms (in µs)")
	fmt.Printf("  %-30s %10s %10s\n", "Form of RPC", "paper", "measured")

	pipe, err := oskit.StartPipeServer()
	check(err)
	nt := measureEach(iters(20000), func() {
		if _, err := pipe.RoundTrip([]byte{1}); err != nil {
			check(err)
		}
	})
	pipe.Close()
	fmt.Printf("  %-30s %10.0f %10.2f\n", "NT-RPC (pipe, 2 processes)", 109.0, nt)

	tcp, err := oskit.StartTCPServer()
	check(err)
	com := measureEach(iters(20000), func() {
		if _, err := tcp.RoundTrip([]byte{1}); err != nil {
			check(err)
		}
	})
	tcp.Close()
	fmt.Printf("  %-30s %10.0f %10.2f\n", "COM out-of-proc (TCP loopback)", 99.0, com)

	srv := oskit.InProc()
	var sink byte
	inproc := measureEach(iters(20000000), func() { sink = srv.Null(1) })
	_ = sink
	fmt.Printf("  %-30s %10.2f %10.4f\n", "COM in-proc (interface call)", 0.03, inproc)

	f := newFixture(vmkit.ProfileA)
	lrmi := measure(iters(50000), f.loop("runLRMI"))
	fmt.Printf("  %-30s %10.2f %10.2f   (for comparison)\n", "J-Kernel LRMI", 2.22, lrmi)
	fmt.Println()
}

func table3() {
	fmt.Println("Table 3. Cost of a double thread switch (in µs)")
	fmt.Printf("  %-38s %8s %10s\n", "Configuration", "paper", "measured")
	pinned := pingPongBench(true, iters(100000))
	fmt.Printf("  %-38s %8.1f %10.2f\n", "OS threads (NT-base; JVM thread model)", 8.6, pinned)
	green := pingPongBench(false, iters(500000))
	fmt.Printf("  %-38s %8s %10.2f   (Go-native ablation)\n", "goroutines, unpinned", "-", green)
	f := newFixture(vmkit.ProfileA)
	lrmi := measure(iters(50000), f.loop("runLRMI"))
	fmt.Printf("  %-38s %8s %10.2f   (what segments avoid paying)\n", "J-Kernel LRMI, for scale", "-", lrmi)
	fmt.Println()
}

func pingPongBench(pin bool, n int) float64 {
	ping := make(chan struct{})
	pong := make(chan struct{})
	done := make(chan struct{})
	go func() {
		if pin {
			// Lock the partner goroutine to its own OS thread.
			lockOS()
			defer unlockOS()
		}
		for {
			select {
			case <-ping:
				pong <- struct{}{}
			case <-done:
				return
			}
		}
	}()
	if pin {
		lockOS()
		defer unlockOS()
	}
	us := measureEach(n, func() {
		ping <- struct{}{}
		<-pong
	})
	close(done)
	return us
}

func table4() {
	fmt.Println("Table 4. Cost of argument copying (in µs per LRMI)")
	fmt.Println("  paper columns are MS-VM serialization / fast-copy")
	f := newFixture(vmkit.ProfileA)
	shapes := []struct {
		name                string
		count, size         int
		paperSer, paperFast float64
	}{
		{"1 x 10 bytes", 1, 10, 104, 4.8},
		{"1 x 100 bytes", 1, 100, 158, 7.7},
		{"10 x 10 bytes", 10, 10, 193, 23.3},
		{"1 x 1000 bytes", 1, 1000, 633, 19.2},
	}
	fmt.Printf("  %-16s %10s %10s %12s %12s\n", "Argument", "paper-ser", "paper-fast", "ser", "fast")
	for _, s := range shapes {
		ms := f.chain("MsgS", s.count, s.size)
		mf := f.chain("MsgF", s.count, s.size)
		n := iters(20000)
		ser := measureEach(n, func() {
			if _, err := f.cap.InvokeVM(f.task, "sink", ms); err != nil {
				check(err)
			}
		})
		fast := measureEach(n, func() {
			if _, err := f.cap.InvokeVM(f.task, "sinkF", mf); err != nil {
				check(err)
			}
		})
		fmt.Printf("  %-16s %10.1f %10.1f %12.2f %12.2f\n", s.name, s.paperSer, s.paperFast, ser, fast)
	}
	fmt.Println()
}

func table5() {
	fmt.Println("Table 5. HTTP server throughput (pages/second)")
	fmt.Println("  8 concurrent clients over loopback TCP, in-memory documents")
	fmt.Printf("  %-10s | %7s %7s %7s | %9s %9s %9s\n",
		"page size", "p-IIS", "p-JWS", "p-IIS+JK", "static", "jws", "bridge")
	paper := map[int][3]float64{
		10:   {801, 122, 662},
		100:  {790, 121, 640},
		1000: {759, 96, 616},
	}
	for _, size := range []int{10, 100, 1000} {
		doc := make([]byte, size)
		for i := range doc {
			doc[i] = byte('a' + i%26)
		}

		static := serveThroughput(httpd.StaticHandler(doc))

		k := core.MustNew(core.Options{})
		bridge, err := httpd.NewBridge(k)
		check(err)
		_, err = bridge.MountDocServlet("doc", "/", doc)
		check(err)
		br := serveThroughput(bridge)

		k2 := core.MustNew(core.Options{})
		jws, err := httpd.NewJWS(k2, doc)
		check(err)
		jt := jwsThroughput(jws)

		p := paper[size]
		fmt.Printf("  %-10s | %7.0f %7.0f %7.0f | %9.0f %9.0f %9.0f\n",
			fmt.Sprintf("%d bytes", size), p[0], p[1], p[2], static, jt, br)
	}
	fmt.Println()
}

// serveThroughput measures pages/sec through a real loopback listener with
// 8 concurrent keep-alive clients, like the paper's setup.
func serveThroughput(h http.Handler) float64 {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String() + "/index.html"

	dur := 600 * time.Millisecond
	if *quick {
		dur = 200 * time.Millisecond
	}
	var total atomic.Int64
	var wg sync.WaitGroup
	stop := time.Now().Add(dur)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2}}
			for time.Now().Before(stop) {
				resp, err := client.Get(url)
				if err != nil {
					return
				}
				drain(resp)
				total.Add(1)
			}
		}()
	}
	wg.Wait()
	return float64(total.Load()) / dur.Seconds()
}

func jwsThroughput(j *httpd.JWS) float64 {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go j.Serve(ln)
	defer ln.Close()
	url := "http://" + ln.Addr().String() + "/index.html"

	dur := 600 * time.Millisecond
	if *quick {
		dur = 200 * time.Millisecond
	}
	var total atomic.Int64
	var wg sync.WaitGroup
	stop := time.Now().Add(dur)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2}}
			for time.Now().Before(stop) {
				resp, err := client.Get(url)
				if err != nil {
					return
				}
				drain(resp)
				total.Add(1)
			}
		}()
	}
	wg.Wait()
	return float64(total.Load()) / dur.Seconds()
}

func table6() {
	fmt.Println("Table 6. Comparison with selected kernels (in µs)")
	fmt.Printf("  %-34s %8s %10s\n", "System / operation", "paper", "measured")
	k := ukern.NewKernel()

	l4 := k.NewL4Pair()
	v := measureEach(iters(200000), func() {
		if _, err := l4.Call(1); err != nil {
			check(err)
		}
	})
	l4.Close()
	fmt.Printf("  %-34s %8.2f %10.2f\n", "L4: round-trip IPC", 1.82, v)

	exo := k.NewExoPair()
	v = measureEach(iters(500000), func() {
		if _, err := exo.Call(1); err != nil {
			check(err)
		}
	})
	fmt.Printf("  %-34s %8.2f %10.2f\n", "Exokernel: protected ctl transfer", 2.40, v)

	eros := k.NewErosPair()
	v = measureEach(iters(200000), func() {
		if _, err := eros.Call(1); err != nil {
			check(err)
		}
	})
	eros.Close()
	fmt.Printf("  %-34s %8.2f %10.2f\n", "Eros: round-trip IPC", 4.90, v)

	f := newFixture(vmkit.ProfileA)
	v = measure(iters(30000), f.loop("runLRMI3"))
	fmt.Printf("  %-34s %8.2f %10.2f\n", "J-Kernel: invocation with 3 args", 3.77, v)
	fmt.Println()
}

// --- table 7: remote kernels (beyond the paper) ----------------------------

// benchNullSvc is the remote null-call target.
type benchNullSvc struct{}

// Null does nothing.
func (benchNullSvc) Null() error { return nil }

// remoteBenchSetup is the worker-kernel body for the cross-process rows.
func remoteBenchSetup(k *core.Kernel) error {
	d, err := k.NewDomain(core.DomainConfig{Name: "svc"})
	if err != nil {
		return err
	}
	cap, err := k.CreateNativeCapability(d, benchNullSvc{})
	if err != nil {
		return err
	}
	if err := k.Export("null", cap); err != nil {
		return err
	}
	// Table 13's workers additionally carry the control plane's deployer.
	return clusterBenchWorker(k)
}

// table7 contrasts local LRMI with remote (cross-kernel) capability
// invocation, the concrete version of the paper's Table 2-vs-3 argument:
// LRMI stays ~an order of magnitude under the cross-process wire, which
// is why domains share a kernel when they can and shard to worker kernels
// only for cores and crash isolation.
func table7() {
	fmt.Println("Table 7. Remote kernels: null capability invocation (in µs; beyond the paper)")
	fmt.Printf("  %-46s %10s\n", "Configuration", "measured")

	// Local rows: the VM LRMI (Table 1's row) and the native-path LRMI.
	f := newFixture(vmkit.ProfileA)
	lrmi := measure(iters(50000), f.loop("runLRMI"))
	fmt.Printf("  %-46s %10.2f\n", "J-Kernel LRMI (VM, same kernel)", lrmi)
	record(7, "J-Kernel LRMI (VM, same kernel)", lrmi)

	kl := core.MustNew(core.Options{})
	sd, err := kl.NewDomain(core.DomainConfig{Name: "s"})
	check(err)
	cd, err := kl.NewDomain(core.DomainConfig{Name: "c"})
	check(err)
	lcap, err := kl.CreateNativeCapability(sd, benchNullSvc{})
	check(err)
	ltask := kl.NewDetachedTask(cd, "bench")
	local := measureEach(iters(200000), func() {
		if _, err := lcap.InvokeFrom(ltask, "Null"); err != nil {
			check(err)
		}
	})
	fmt.Printf("  %-46s %10.2f\n", "native LRMI (Go, same kernel)", local)
	record(7, "native LRMI (Go, same kernel)", local)

	// In-process wire row: second kernel, same process, TCP loopback.
	k2 := core.MustNew(core.Options{})
	s2, err := k2.NewDomain(core.DomainConfig{Name: "svc"})
	check(err)
	c2, err := k2.CreateNativeCapability(s2, benchNullSvc{})
	check(err)
	check(k2.Export("null", c2))
	ln, err := remote.Listen(k2, "tcp", "127.0.0.1:0")
	check(err)
	conn, err := remote.Dial(kl, "tcp", ln.Addr().String())
	check(err)
	proxy, err := conn.Import("null")
	check(err)
	inproc := measureEach(iters(20000), func() {
		if _, err := proxy.InvokeFrom(ltask, "Null"); err != nil {
			check(err)
		}
	})
	conn.Close()
	ln.Close()
	fmt.Printf("  %-46s %10.2f\n", "remote null call (2nd kernel, TCP loopback)", inproc)
	record(7, "remote null call (2nd kernel, TCP loopback)", inproc)

	// Cross-process row: a real worker process behind a unix socket.
	pool, err := remote.StartPool(remote.PoolOptions{Workers: 1})
	check(err)
	defer pool.Close()
	wconn, err := pool.Worker(0).Dial(kl, 10*time.Second)
	check(err)
	wproxy, err := wconn.Import("null")
	check(err)
	cross := measureEach(iters(20000), func() {
		if _, err := wproxy.InvokeFrom(ltask, "Null"); err != nil {
			check(err)
		}
	})
	wconn.Close()
	fmt.Printf("  %-46s %10.2f\n", "remote null call (worker process, unix socket)", cross)
	record(7, "remote null call (worker process, unix socket)", cross)
	fmt.Println()
}

// --- table 8: sync vs async-batched remote invocation ----------------------

// measureAsyncBatched times null calls issued as windowed async fan-outs:
// each wave queues `window` futures (the connection coalesces them into
// multi-invoke frames), flushes, and joins. µs per call.
func measureAsyncBatched(conn *remote.Conn, proxy *core.Capability, task *core.Task, n int) float64 {
	const window = 512
	futs := make([]*core.Future, 0, window)
	return measure(n, func(n int) {
		for done := 0; done < n; {
			w := window
			if w > n-done {
				w = n - done
			}
			futs = futs[:0]
			for i := 0; i < w; i++ {
				futs = append(futs, proxy.InvokeAsyncFrom(task, "Null"))
			}
			conn.Flush()
			for _, f := range futs {
				if _, err := f.Wait(); err != nil {
					check(err)
				}
			}
			done += w
		}
	})
}

// table8 measures what batching buys on the wire: the same remote null
// call issued synchronously (one frame and one round trip per call, the
// Table 7 baseline) against async futures coalesced into multi-invoke
// frames. The gap is the per-frame overhead — syscalls, wakeups, reply
// dispatch — amortized over a whole batch, the wire-level version of the
// paper's "one large object beats many small ones" (Table 4).
func table8() {
	fmt.Println("Table 8. Remote kernels: sync vs async-batched null calls (in µs/call; beyond the paper)")
	fmt.Printf("  %-52s %10s %12s\n", "Configuration", "µs/call", "calls/sec")
	row := func(name string, us float64) {
		fmt.Printf("  %-52s %10.2f %12.0f\n", name, us, 1e6/us)
		record(8, name, us)
	}

	kl := core.MustNew(core.Options{})
	cd, err := kl.NewDomain(core.DomainConfig{Name: "app"})
	check(err)
	task := kl.NewDetachedTask(cd, "bench")

	// In-process second kernel over TCP loopback.
	k2 := core.MustNew(core.Options{})
	s2, err := k2.NewDomain(core.DomainConfig{Name: "svc"})
	check(err)
	c2, err := k2.CreateNativeCapability(s2, benchNullSvc{})
	check(err)
	check(k2.Export("null", c2))
	ln, err := remote.Listen(k2, "tcp", "127.0.0.1:0")
	check(err)
	conn, err := remote.Dial(kl, "tcp", ln.Addr().String())
	check(err)
	proxy, err := conn.Import("null")
	check(err)
	syncLoop := measureEach(iters(20000), func() {
		if _, err := proxy.InvokeFrom(task, "Null"); err != nil {
			check(err)
		}
	})
	row("sync per-call (2nd kernel, TCP loopback)", syncLoop)
	asyncLoop := measureAsyncBatched(conn, proxy, task, iters(200000))
	row("async batched (2nd kernel, TCP loopback)", asyncLoop)
	conn.Close()
	ln.Close()

	// Cross-process: a real worker behind a unix socket.
	pool, err := remote.StartPool(remote.PoolOptions{Workers: 1})
	check(err)
	defer pool.Close()
	wconn, err := pool.Worker(0).Dial(kl, 10*time.Second)
	check(err)
	wproxy, err := wconn.Import("null")
	check(err)
	syncCross := measureEach(iters(20000), func() {
		if _, err := wproxy.InvokeFrom(task, "Null"); err != nil {
			check(err)
		}
	})
	row("sync per-call (worker process, unix socket)", syncCross)
	asyncCross := measureAsyncBatched(wconn, wproxy, task, iters(200000))
	row("async batched (worker process, unix socket)", asyncCross)
	wconn.Close()

	fmt.Printf("  %-52s %9.1fx\n", "batching speedup (TCP loopback)", syncLoop/asyncLoop)
	fmt.Printf("  %-52s %9.1fx\n", "batching speedup (worker process)", syncCross/asyncCross)
	recordRatio(8, "batching speedup (TCP loopback)", syncLoop/asyncLoop)
	recordRatio(8, "batching speedup (worker process)", syncCross/asyncCross)
	fmt.Println()
}

// --- table 9: capability churn and table hygiene ---------------------------

// benchMakerSvc mints a fresh capability per call — the churn workload's
// server half: every cycle creates a new gate, exports it inline, and
// expects release (or revocation) to return the tables to baseline.
type benchMakerSvc struct {
	k *core.Kernel
	d *core.Domain
}

// Make returns a fresh null-service capability.
func (m *benchMakerSvc) Make() (*core.Capability, error) {
	return m.k.CreateNativeCapability(m.d, benchNullSvc{})
}

// table9 measures the full capability lifecycle on the wire: mint a
// capability remotely, import it inline (no manifest), invoke it, release
// it — then verifies the reference-counted export GC actually collected
// everything, on both ends of the connection. The leaked-entries rows are
// the benchmark-shaped version of the churn regression test: any value
// above zero is a table leak.
func table9() {
	fmt.Println("Table 9. Remote kernels: capability churn and table hygiene (beyond the paper)")
	fmt.Printf("  %-52s %10s %12s\n", "Configuration", "µs/cycle", "cycles/sec")

	kl := core.MustNew(core.Options{})
	cd, err := kl.NewDomain(core.DomainConfig{Name: "app"})
	check(err)
	task := kl.NewDetachedTask(cd, "bench")

	k2 := core.MustNew(core.Options{})
	s2, err := k2.NewDomain(core.DomainConfig{Name: "svc"})
	check(err)
	maker, err := k2.CreateNativeCapability(s2, &benchMakerSvc{k: k2, d: s2})
	check(err)
	check(k2.Export("maker", maker))
	ln, err := remote.Listen(k2, "tcp", "127.0.0.1:0")
	check(err)
	conn, err := remote.Dial(kl, "tcp", ln.Addr().String())
	check(err)
	proxy, err := conn.Import("maker")
	check(err)

	us := measureEach(iters(20000), func() {
		res, err := proxy.InvokeFrom(task, "Make")
		check(err)
		cap := res[0].(*core.Capability)
		if _, err := cap.InvokeFrom(task, "Null"); err != nil {
			check(err)
		}
		remote.ReleaseProxy(cap)
	})
	fmt.Printf("  %-52s %10.2f %12.0f\n", "churn cycle: make+invoke+release (TCP loopback)", us, 1e6/us)
	record(9, "churn cycle: make+invoke+release (TCP loopback)", us)

	// Leak gate: once the release sweep drains, the client connection
	// holds exactly its lookup import, and the server connection exactly
	// the one export backing it.
	conn.Flush()
	leaked := func(c *remote.Conn, base remote.TableSizes) float64 {
		deadline := time.Now().Add(10 * time.Second)
		sz := c.TableSizes()
		for time.Now().Before(deadline) {
			if sz = c.TableSizes(); sz == base {
				break
			}
			time.Sleep(time.Millisecond)
		}
		return float64(sz.Exports - base.Exports + sz.ExportIDs - base.ExportIDs +
			sz.Imports - base.Imports + sz.PreRevoked - base.PreRevoked +
			sz.Unhook - base.Unhook + sz.Pending - base.Pending)
	}
	clientLeak := leaked(conn, remote.TableSizes{Imports: 1})
	var serverLeak float64
	if conns := ln.Conns(); len(conns) == 1 {
		serverLeak = leaked(conns[0], remote.TableSizes{Exports: 1, ExportIDs: 1, Unhook: 1})
	}
	fmt.Printf("  %-52s %10.0f\n", "post-churn leaked table entries, client (want 0)", clientLeak)
	fmt.Printf("  %-52s %10.0f\n", "post-churn leaked table entries, server (want 0)", serverLeak)
	recordRatio(9, "post-churn leaked table entries (client)", clientLeak)
	recordRatio(9, "post-churn leaked table entries (server)", serverLeak)
	conn.Close()
	ln.Close()
	fmt.Println()
}

// --- table 10: telemetry overhead ------------------------------------------

// telemetryRatio is table 10's measured on/off ratio, checked against
// -telemetry-gate in main after the JSON artifact is written.
var telemetryRatio float64

// table10 measures what the observability layer costs on the hottest wire
// path: the async-batched null call of Table 8, with telemetry enabled
// (the default — frame counters, latency histograms, a client span per
// call) against a kernel built with DisableTelemetry. Each configuration
// runs three times interleaved and keeps its best, so the ratio compares
// steady states rather than scheduler noise.
func table10() {
	fmt.Println("Table 10. Telemetry overhead on async-batched null calls (in µs/call; beyond the paper)")
	fmt.Printf("  %-52s %10s %12s\n", "Configuration", "µs/call", "calls/sec")

	bench := func(disable bool) float64 {
		kl := core.MustNew(core.Options{DisableTelemetry: disable, TelemetryNode: "bench-app"})
		cd, err := kl.NewDomain(core.DomainConfig{Name: "app"})
		check(err)
		task := kl.NewDetachedTask(cd, "bench")
		k2 := core.MustNew(core.Options{DisableTelemetry: disable, TelemetryNode: "bench-svc"})
		s2, err := k2.NewDomain(core.DomainConfig{Name: "svc"})
		check(err)
		c2, err := k2.CreateNativeCapability(s2, benchNullSvc{})
		check(err)
		check(k2.Export("null", c2))
		ln, err := remote.Listen(k2, "tcp", "127.0.0.1:0")
		check(err)
		conn, err := remote.Dial(kl, "tcp", ln.Addr().String())
		check(err)
		proxy, err := conn.Import("null")
		check(err)
		us := measureAsyncBatched(conn, proxy, task, iters(200000))
		conn.Close()
		ln.Close()
		return us
	}

	// Paired rounds, median ratio: the ratio compares two ~3µs/call
	// timings, so scheduler and neighbor noise moves either side far more
	// than the telemetry work itself does — but noise drifts slowly, so an
	// on-run and the off-run right next to it see the same conditions.
	// Each round therefore produces its own on/off ratio, and the median
	// over five rounds discards the rounds a noise spike landed in.
	const rounds = 5
	ratios := make([]float64, 0, rounds)
	on, off := math.Inf(1), math.Inf(1)
	for i := 0; i < rounds; i++ {
		o, f := bench(false), bench(true)
		ratios = append(ratios, o/f)
		on = math.Min(on, o)
		off = math.Min(off, f)
	}
	sort.Float64s(ratios)

	fmt.Printf("  %-52s %10.2f %12.0f\n", "async batched, telemetry enabled", on, 1e6/on)
	record(10, "async batched, telemetry enabled", on)
	fmt.Printf("  %-52s %10.2f %12.0f\n", "async batched, telemetry disabled", off, 1e6/off)
	record(10, "async batched, telemetry disabled", off)
	telemetryRatio = ratios[rounds/2]
	fmt.Printf("  %-52s %9.3fx\n", "telemetry overhead ratio (on/off)", telemetryRatio)
	recordRatio(10, "telemetry overhead ratio (on/off)", telemetryRatio)
	fmt.Println()
}

// --- table 11: three-party handoff (relay vs shortened path) ---------------

// benchHolderSvc parks the middleman's imported proxy so the client can
// re-import it over the middleman connection — the wire-level re-export
// that either relays through the middleman or is shortened by a redeemed
// handoff ticket.
type benchHolderSvc struct{ cap *core.Capability }

// Get returns the parked capability.
func (h *benchHolderSvc) Get() (*core.Capability, error) { return h.cap, nil }

// table11 measures what the three-party handoff buys: the same null call
// issued over a directly-dialed connection, through a middleman relay
// (handoff disabled at the middleman, so every frame is forwarded twice),
// and over a shortened path (the re-export redeemed into a first-class
// import at the origin). The relay costs roughly two direct calls — two
// hops, two decode/dispatch cycles — and the shortened path must land
// back within a sliver of the direct row, which is the point of the
// protocol.
func table11() {
	fmt.Println("Table 11. Remote kernels: relayed vs handoff-shortened re-exports (in µs/call; beyond the paper)")
	fmt.Printf("  %-52s %10s %12s\n", "Configuration", "µs/call", "calls/sec")
	row := func(name string, us float64) {
		fmt.Printf("  %-52s %10.2f %12.0f\n", name, us, 1e6/us)
		record(11, name, us)
	}

	// Origin A: exports the null service and listens (Listen advertises
	// the bound address, which is what makes A a redeemable origin).
	kA := core.MustNew(core.Options{})
	aDom, err := kA.NewDomain(core.DomainConfig{Name: "origin"})
	check(err)
	aCap, err := kA.CreateNativeCapability(aDom, benchNullSvc{})
	check(err)
	check(kA.Export("null", aCap))
	lnA, err := remote.Listen(kA, "tcp", "127.0.0.1:0")
	check(err)
	defer lnA.Close()

	// Middleman B: imports A's null service and re-exports it behind a
	// holder, exactly the shape an app produces when it passes a received
	// capability onward.
	kB := core.MustNew(core.Options{})
	bDom, err := kB.NewDomain(core.DomainConfig{Name: "middle"})
	check(err)
	ba, err := remote.Dial(kB, "tcp", lnA.Addr().String())
	check(err)
	defer ba.Close()
	bProxy, err := ba.Import("null")
	check(err)
	holderCap, err := kB.CreateNativeCapability(bDom, &benchHolderSvc{cap: bProxy})
	check(err)
	check(kB.Export("holder", holderCap))
	lnB, err := remote.Listen(kB, "tcp", "127.0.0.1:0")
	check(err)
	defer lnB.Close()

	// Client C.
	kC := core.MustNew(core.Options{})
	cDom, err := kC.NewDomain(core.DomainConfig{Name: "client"})
	check(err)
	task := kC.NewDetachedTask(cDom, "bench")

	// Baseline: C dials the origin directly.
	dconn, err := remote.Dial(kC, "tcp", lnA.Addr().String())
	check(err)
	defer dconn.Close()
	dproxy, err := dconn.Import("null")
	check(err)
	direct := measureEach(iters(20000), func() {
		if _, err := dproxy.InvokeFrom(task, "Null"); err != nil {
			check(err)
		}
	})
	row("direct null call (C dials origin A)", direct)

	// Relay: handoff off at the middleman, so the re-export stays a pure
	// relay and every call transits B.
	remote.SetHandoff(kB, false)
	relayConn, err := remote.Dial(kC, "tcp", lnB.Addr().String())
	check(err)
	relayHolder, err := relayConn.Import("holder")
	check(err)
	res, err := relayHolder.InvokeFrom(task, "Get")
	check(err)
	relayCap := res[0].(*core.Capability)
	relayed := measureEach(iters(20000), func() {
		if _, err := relayCap.InvokeFrom(task, "Null"); err != nil {
			check(err)
		}
	})
	row("relayed null call (C -> middleman B -> A)", relayed)
	remote.ReleaseProxy(relayCap)
	remote.ReleaseProxy(relayHolder)
	relayConn.Close()

	// Shortened: handoff back on, a fresh re-export ships with a ticket,
	// and C redeems it into a direct import at A before measuring.
	remote.SetHandoff(kB, true)
	shortConn, err := remote.Dial(kC, "tcp", lnB.Addr().String())
	check(err)
	defer shortConn.Close()
	shortHolder, err := shortConn.Import("holder")
	check(err)
	res, err = shortHolder.InvokeFrom(task, "Get")
	check(err)
	shortCap := res[0].(*core.Capability)
	deadline := time.Now().Add(10 * time.Second)
	for !remote.HandoffDone(shortCap) {
		if time.Now().After(deadline) {
			check(fmt.Errorf("handoff never shortened the re-exported route"))
		}
		time.Sleep(time.Millisecond)
	}
	shortened := measureEach(iters(20000), func() {
		if _, err := shortCap.InvokeFrom(task, "Null"); err != nil {
			check(err)
		}
	})
	row("shortened null call (redeemed ticket, C -> A)", shortened)

	fmt.Printf("  %-52s %9.2fx\n", "relay penalty (relayed / direct)", relayed/direct)
	recordRatio(11, "relay penalty (relayed / direct)", relayed/direct)
	fmt.Printf("  %-52s %9.2fx\n", "shortened overhead (shortened / direct)", shortened/direct)
	recordRatio(11, "shortened overhead (shortened / direct)", shortened/direct)

	// Ticket hygiene: the one minted ticket was redeemed, so the origin's
	// handoff table reads empty — anything left is a leak.
	tickets := float64(remote.HandoffTableSizes(kA).Tickets)
	fmt.Printf("  %-52s %10.0f\n", "post-redeem unredeemed tickets, origin (want 0)", tickets)
	recordRatio(11, "post-redeem unredeemed tickets (origin)", tickets)
	fmt.Println()
}

// --- table 12: the wire hot path (pooled frames, generated marshalers) -----

// benchPayload is the registered payload message for the 1 KiB rows. Its
// marshaler plan compiles at RegisterWireType time, so these rows ride the
// generated fast path unless the registry's fastpath is toggled off.
type benchPayload struct {
	Seq  int64
	Data []byte
}

// benchPayloadSvc echoes payload messages.
type benchPayloadSvc struct{}

// Echo returns its argument.
func (benchPayloadSvc) Echo(p benchPayload) (benchPayload, error) { return p, nil }

// table12 measures the wire hot path directly: µs/call AND allocs/call
// for the three shapes the zero-copy work targets — the sync null call
// (per-frame overhead), the async-batched null call (where pooled frames
// and recycled batch slices should leave almost nothing per call), and a
// 1 KiB-payload echo. The generated-vs-reflect contrast is measured on
// the serializer passes themselves (marshal+unmarshal of the same 1 KiB
// message, fastpath on vs off): per wire call the four seri passes are a
// few percent of the total, so only the direct measurement resolves the
// difference above scheduler noise — and it is the per-type-marshaler
// claim being gated, not the syscalls around it.
func table12() {
	fmt.Println("Table 12. Remote kernels: wire hot path, time and allocations (beyond the paper)")
	fmt.Printf("  %-52s %10s %12s\n", "Configuration", "µs/call", "allocs/call")
	row := func(name string, us, allocs float64) {
		fmt.Printf("  %-52s %10.2f %12.1f\n", name, us, allocs)
		recordAllocs(12, name, us, allocs)
	}

	kl := core.MustNew(core.Options{})
	cd, err := kl.NewDomain(core.DomainConfig{Name: "app"})
	check(err)
	task := kl.NewDetachedTask(cd, "bench")
	kl.RegisterWireType("bench.payload", benchPayload{})

	k2 := core.MustNew(core.Options{})
	s2, err := k2.NewDomain(core.DomainConfig{Name: "svc"})
	check(err)
	k2.RegisterWireType("bench.payload", benchPayload{})
	nullCap, err := k2.CreateNativeCapability(s2, benchNullSvc{})
	check(err)
	check(k2.Export("null", nullCap))
	echoCap, err := k2.CreateNativeCapability(s2, benchPayloadSvc{})
	check(err)
	check(k2.Export("payload", echoCap))
	ln, err := remote.Listen(k2, "tcp", "127.0.0.1:0")
	check(err)
	defer ln.Close()
	conn, err := remote.Dial(kl, "tcp", ln.Addr().String())
	check(err)
	defer conn.Close()
	proxy, err := conn.Import("null")
	check(err)
	pproxy, err := conn.Import("payload")
	check(err)

	syncUs, syncAllocs := measureAllocs(iters(20000), func(n int) {
		for i := 0; i < n; i++ {
			if _, err := proxy.InvokeFrom(task, "Null"); err != nil {
				check(err)
			}
		}
	})
	row("sync null call (TCP loopback)", syncUs, syncAllocs)

	const window = 512
	futs := make([]*core.Future, 0, window)
	asyncUs, asyncAllocs := measureAllocs(iters(200000), func(n int) {
		for done := 0; done < n; {
			w := window
			if w > n-done {
				w = n - done
			}
			futs = futs[:0]
			for i := 0; i < w; i++ {
				futs = append(futs, proxy.InvokeAsyncFrom(task, "Null"))
			}
			conn.Flush()
			for _, f := range futs {
				if _, err := f.Wait(); err != nil {
					check(err)
				}
			}
			done += w
		}
	})
	row("async batched null call (TCP loopback)", asyncUs, asyncAllocs)

	// 1 KiB rows ride the async-batched path too: with the per-frame
	// syscall amortized away, what remains per call is dominated by the
	// four serializer passes (args and reply, encode and decode), which is
	// exactly the generated-vs-reflect contrast being measured.
	msg := benchPayload{Seq: 1, Data: make([]byte, 1024)}
	for i := range msg.Data {
		msg.Data[i] = byte(i)
	}
	payloadLoop := func(n int) {
		const pwindow = 128
		for done := 0; done < n; {
			w := pwindow
			if w > n-done {
				w = n - done
			}
			futs = futs[:0]
			for i := 0; i < w; i++ {
				futs = append(futs, pproxy.InvokeAsyncFrom(task, "Echo", msg))
			}
			conn.Flush()
			for _, f := range futs {
				if _, err := f.Wait(); err != nil {
					check(err)
				}
			}
			done += w
		}
	}
	echoUs, echoAllocs := measureAllocs(iters(50000), payloadLoop)
	row("1 KiB payload echo, batched (TCP loopback)", echoUs, echoAllocs)

	// The serializer passes in isolation: one marshal+unmarshal of the
	// same message through the kernel's registry, generated plans on vs
	// bypassed (every encode/decode falls back to the reflect walker).
	// Interleaved best-of rounds, as in table 10.
	reg := kl.SeriRegistry()
	seriLoop := func(n int) {
		for i := 0; i < n; i++ {
			data, err := seri.Marshal(reg, msg)
			check(err)
			_, err = seri.Unmarshal(reg, data)
			check(err)
		}
	}
	seriBench := func(fast bool) (float64, float64) {
		reg.SetFastpath(fast)
		defer reg.SetFastpath(true)
		return measureAllocs(iters(500000), seriLoop)
	}
	fastUs, fastAllocs := math.Inf(1), math.Inf(1)
	reflUs, reflAllocs := math.Inf(1), math.Inf(1)
	for i := 0; i < 3; i++ {
		fu, fa := seriBench(true)
		ru, ra := seriBench(false)
		fastUs, fastAllocs = math.Min(fastUs, fu), math.Min(fastAllocs, fa)
		reflUs, reflAllocs = math.Min(reflUs, ru), math.Min(reflAllocs, ra)
	}
	row("1 KiB payload marshal+unmarshal (generated)", fastUs, fastAllocs)
	row("1 KiB payload marshal+unmarshal (reflect walker)", reflUs, reflAllocs)

	fmt.Printf("  %-52s %9.2fx\n", "generated-marshaler speedup (reflect / generated)", reflUs/fastUs)
	recordRatio(12, "generated-marshaler speedup (reflect / generated)", reflUs/fastUs)
	fmt.Println()
}

func drain(resp *http.Response) {
	buf := make([]byte, 4096)
	for {
		if _, err := resp.Body.Read(buf); err != nil {
			break
		}
	}
	resp.Body.Close()
}
