package main

import "runtime"

// lockOS / unlockOS pin the calling goroutine to its OS thread, modelling
// the JVM-era 1:1 thread mapping for Table 3.
func lockOS()   { runtime.LockOSThread() }
func unlockOS() { runtime.UnlockOSThread() }
