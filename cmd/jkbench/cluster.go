package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"jkernel/internal/core"
	"jkernel/internal/httpd"
	"jkernel/internal/sched"
	"jkernel/internal/telemetry"
)

// capacityMu serializes capacityServlet across one worker process: each
// request holds it for capacityWork of timer sleep, modeling a worker
// with a fixed serial request capacity (~1000 req/s). Timer-based work
// scales with the number of worker *processes*, not host cores, so the
// scheduled-pool speedup is measurable even on a single-core CI box.
var capacityMu sync.Mutex

const capacityWork = time.Millisecond

// capacityServlet is table 13's load target.
type capacityServlet struct{}

func (capacityServlet) Service(req *httpd.Request) (*httpd.Response, error) {
	capacityMu.Lock()
	//jk:allow(lockhold) the mutex IS the benchmark's simulated fixed capacity: holding it across the sleep serializes requests by design (table 13)
	time.Sleep(capacityWork)
	capacityMu.Unlock()
	return &httpd.Response{Status: 200, Body: []byte("ok")}, nil
}

// clusterBenchWorker is the worker half of table 13, installed alongside
// remoteBenchSetup's plain exports.
func clusterBenchWorker(k *core.Kernel) error {
	_, err := sched.ServeWorker(k, map[string]func() httpd.Servlet{
		"capacity": func() httpd.Servlet { return capacityServlet{} },
	})
	return err
}

// table13Shards spreads the load across enough placements that every
// worker in the largest configuration owns two.
const table13Shards = 8

// runClusterLoad starts a cluster of exactly `workers` workers, deploys
// the capacity shards, and hammers the front server with `clients`
// concurrent HTTP connections for `dur`. Returns sustained throughput
// (req/s) and the p50/p99 request latency.
func runClusterLoad(workers, clients int, dur time.Duration) (thr float64, p50, p99 time.Duration) {
	k := core.MustNew(core.Options{})
	bridge, err := httpd.NewBridge(k)
	check(err)
	s, err := sched.Start(sched.Options{
		Kernel:     k,
		Bridge:     bridge,
		MinWorkers: workers,
		Strategy:   sched.LeastLoaded(),
		Autoscale:  sched.AutoscaleConfig{Disabled: true},
	})
	check(err)
	defer s.Close()
	for i := 0; i < table13Shards; i++ {
		check(s.Deploy(fmt.Sprintf("cap%d", i), fmt.Sprintf("/c%d/", i),
			sched.DeploySpec{Kind: "native", Impl: "capacity"}))
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	srv := &http.Server{Handler: bridge}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	transport := &http.Transport{
		MaxIdleConns:        clients + 64,
		MaxIdleConnsPerHost: clients + 64,
	}
	client := &http.Client{Transport: transport, Timeout: 60 * time.Second}
	defer transport.CloseIdleConnections()

	// Settle first (connections dialed, queues at steady state), then
	// measure a fixed window.
	var (
		measuring atomic.Bool
		ops       atomic.Int64
		fails     atomic.Int64
		hist      telemetry.Histogram
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/c%d/x", base, c%table13Shards)
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					fails.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					fails.Add(1)
					continue
				}
				if measuring.Load() {
					ops.Add(1)
					hist.Observe(int64(time.Since(t0)))
				}
			}
		}(c)
	}
	time.Sleep(dur / 3)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(dur)
	measuring.Store(false)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if n := fails.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "jkbench: table 13: %d failed request(s) at %d workers\n", n, workers)
	}
	thr = float64(ops.Load()) / elapsed.Seconds()
	p50 = time.Duration(hist.Quantile(0.50))
	p99 = time.Duration(hist.Quantile(0.99))
	return thr, p50, p99
}

// table13 measures the cluster control plane end to end: the same
// fixed-capacity servlet shards served by a scheduled 4-worker pool vs a
// single worker, under sustained concurrent HTTP load through the real
// bridge + wire path. The scheduled pool must deliver the pool-size
// speedup (gate: >=3x at 4 workers) at no worse tail latency — the whole
// point of placement.
func table13() {
	clients := 2000
	dur := 3 * time.Second
	if *quick {
		clients = 200
		dur = 1500 * time.Millisecond
	}
	fmt.Printf("Table 13. Cluster control plane: %d concurrent HTTP clients, %d capacity shards (beyond the paper)\n",
		clients, table13Shards)
	fmt.Printf("  %-34s %10s %10s %10s\n", "Configuration", "req/s", "p50 ms", "p99 ms")

	thr1, p50a, p99a := runClusterLoad(1, clients, dur)
	fmt.Printf("  %-34s %10.0f %10.1f %10.1f\n", "scheduled pool, 1 worker", thr1,
		float64(p50a.Microseconds())/1e3, float64(p99a.Microseconds())/1e3)
	thr4, p50b, p99b := runClusterLoad(4, clients, dur)
	fmt.Printf("  %-34s %10.0f %10.1f %10.1f\n", "scheduled pool, 4 workers", thr4,
		float64(p50b.Microseconds())/1e3, float64(p99b.Microseconds())/1e3)
	ratio := thr4 / thr1
	fmt.Printf("  %-34s %9.2fx\n", "4-worker / 1-worker throughput", ratio)
	fmt.Println()

	benchRows = append(benchRows,
		benchRow{Table: 13, Name: "cluster HTTP load, 1 worker", MicrosPer: 1e6 / thr1, OpsPerSec: thr1,
			MillisP50: float64(p50a.Microseconds()) / 1e3, MillisP99: float64(p99a.Microseconds()) / 1e3},
		benchRow{Table: 13, Name: "cluster HTTP load, 4 workers", MicrosPer: 1e6 / thr4, OpsPerSec: thr4,
			MillisP50: float64(p50b.Microseconds()) / 1e3, MillisP99: float64(p99b.Microseconds()) / 1e3},
	)
	recordRatio(13, "cluster 4-worker vs 1-worker throughput", ratio)
	clusterRatio = ratio
}

// clusterRatio is table 13's scheduled-pool speedup, checked against
// -cluster-gate after all tables run.
var clusterRatio float64
