// Command jkhttpd runs the extensible web server of the paper's §4: a
// native front server hosting the J-Kernel bridge, with the CS314
// toolchain servlets premounted and the admin upload surface open.
//
//	jkhttpd -addr :8080
//
// With -workers N the server becomes a cluster: a control plane spawns N
// worker kernel processes (autoscaling up to -max-workers), uploaded
// servlets are placed across them by -strategy, crashed workers restart
// and their servlets fail over to survivors.
//
// Endpoints:
//
//	GET    /status                      liveness (native servlet)
//	POST   /cs314/compile               MiniC -> C3 assembly
//	POST   /cs314/assemble?unit=N       C3 assembly -> object file
//	POST   /cs314/link                  object bundle -> executable
//	POST   /cs314/run                   executable -> program output
//	POST   /admin/upload?name=&prefix=&main=   upload a VM servlet bundle
//	DELETE /admin/servlet?name=         terminate a servlet domain
//	GET    /admin/servlets              list mounted servlets
//	GET    /admin/cluster               control-plane snapshot (cluster mode)
//	GET    /debug/jk                    telemetry snapshot (+ ?trace=<id>)
//	GET    /debug/pprof/                Go profiler
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"

	"jkernel"
	"jkernel/servlet"
	"jkernel/toolchain"
)

type statusServlet struct{}

func (statusServlet) Service(req *servlet.Request) (*servlet.Response, error) {
	return &servlet.Response{Status: 200, Body: []byte("jkhttpd: serving\n")}, nil
}

// clusterWorkerSetup is the worker half of cluster mode: each spawned
// process installs a deployer the control plane drives. "status" is the
// only native factory; everything else arrives as uploaded VM bundles.
func clusterWorkerSetup(k *jkernel.Kernel) error {
	_, err := jkernel.ServeClusterWorker(k, map[string]func() servlet.Servlet{
		"status": func() servlet.Servlet { return statusServlet{} },
	})
	return err
}

func main() {
	jkernel.MaybeRunWorker(clusterWorkerSetup)

	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("workers", 0, "cluster mode: minimum worker kernel processes (0 = in-process servlets only)")
	maxWorkers := flag.Int("max-workers", 0, "cluster mode: autoscale ceiling (default: -workers)")
	strategy := flag.String("strategy", "least-loaded", "placement strategy: least-loaded, round-robin, consistent-hash")
	flag.Parse()

	k := jkernel.New(jkernel.Options{Stdout: os.Stdout})
	bridge, err := servlet.NewBridge(k)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := bridge.MountNative("status", "/status", statusServlet{}); err != nil {
		log.Fatal(err)
	}
	if err := toolchain.MountServlets(bridge); err != nil {
		log.Fatal(err)
	}

	var cluster *jkernel.Cluster
	if *workers > 0 {
		strat, err := jkernel.StrategyByName(*strategy)
		if err != nil {
			log.Fatal(err)
		}
		cluster, err = jkernel.StartCluster(jkernel.ClusterOptions{
			Kernel:     k,
			Bridge:     bridge,
			MinWorkers: *workers,
			MaxWorkers: *maxWorkers,
			Strategy:   strat,
			Log:        func(f string, a ...any) { log.Printf("sched: "+f, a...) },
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
	}

	// Observability: live metrics/traces at /debug/jk, profiler under
	// /debug/pprof/; everything else routes through the bridge.
	mux := http.NewServeMux()
	mux.Handle("/debug/jk", jkernel.DebugHandler(k))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if cluster != nil {
		mux.HandleFunc("/admin/cluster", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(jkernel.ClusterStats(cluster))
		})
	}
	mux.Handle("/", bridge)

	if cluster != nil {
		fmt.Printf("jkhttpd cluster on http://%s (%d workers, %s placement, servlets: %v)\n",
			*addr, *workers, *strategy, bridge.Router.Names())
	} else {
		fmt.Printf("jkhttpd listening on http://%s (servlets: %v)\n", *addr, bridge.Router.Names())
	}
	log.Fatal(http.ListenAndServe(*addr, mux))
}
