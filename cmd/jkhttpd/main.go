// Command jkhttpd runs the extensible web server of the paper's §4: a
// native front server hosting the J-Kernel bridge, with the CS314
// toolchain servlets premounted and the admin upload surface open.
//
//	jkhttpd -addr :8080
//
// Endpoints:
//
//	GET    /status                      liveness (native servlet)
//	POST   /cs314/compile               MiniC -> C3 assembly
//	POST   /cs314/assemble?unit=N       C3 assembly -> object file
//	POST   /cs314/link                  object bundle -> executable
//	POST   /cs314/run                   executable -> program output
//	POST   /admin/upload?name=&prefix=&main=   upload a VM servlet bundle
//	DELETE /admin/servlet?name=         terminate a servlet domain
//	GET    /admin/servlets              list mounted servlets
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"jkernel"
	"jkernel/servlet"
	"jkernel/toolchain"
)

type statusServlet struct{}

func (statusServlet) Service(req *servlet.Request) (*servlet.Response, error) {
	return &servlet.Response{Status: 200, Body: []byte("jkhttpd: serving\n")}, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()

	k := jkernel.New(jkernel.Options{Stdout: os.Stdout})
	bridge, err := servlet.NewBridge(k)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := bridge.MountNative("status", "/status", statusServlet{}); err != nil {
		log.Fatal(err)
	}
	if err := toolchain.MountServlets(bridge); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jkhttpd listening on http://%s (servlets: %v)\n", *addr, bridge.Router.Names())
	log.Fatal(http.ListenAndServe(*addr, bridge))
}
