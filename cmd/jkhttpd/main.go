// Command jkhttpd runs the extensible web server of the paper's §4: a
// native front server hosting the J-Kernel bridge, with the CS314
// toolchain servlets premounted and the admin upload surface open.
//
//	jkhttpd -addr :8080
//
// Endpoints:
//
//	GET    /status                      liveness (native servlet)
//	POST   /cs314/compile               MiniC -> C3 assembly
//	POST   /cs314/assemble?unit=N       C3 assembly -> object file
//	POST   /cs314/link                  object bundle -> executable
//	POST   /cs314/run                   executable -> program output
//	POST   /admin/upload?name=&prefix=&main=   upload a VM servlet bundle
//	DELETE /admin/servlet?name=         terminate a servlet domain
//	GET    /admin/servlets              list mounted servlets
//	GET    /debug/jk                    telemetry snapshot (+ ?trace=<id>)
//	GET    /debug/pprof/                Go profiler
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"

	"jkernel"
	"jkernel/servlet"
	"jkernel/toolchain"
)

type statusServlet struct{}

func (statusServlet) Service(req *servlet.Request) (*servlet.Response, error) {
	return &servlet.Response{Status: 200, Body: []byte("jkhttpd: serving\n")}, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()

	k := jkernel.New(jkernel.Options{Stdout: os.Stdout})
	bridge, err := servlet.NewBridge(k)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := bridge.MountNative("status", "/status", statusServlet{}); err != nil {
		log.Fatal(err)
	}
	if err := toolchain.MountServlets(bridge); err != nil {
		log.Fatal(err)
	}
	// Observability: live metrics/traces at /debug/jk, profiler under
	// /debug/pprof/; everything else routes through the bridge.
	mux := http.NewServeMux()
	mux.Handle("/debug/jk", jkernel.DebugHandler(k))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", bridge)

	fmt.Printf("jkhttpd listening on http://%s (servlets: %v)\n", *addr, bridge.Router.Names())
	log.Fatal(http.ListenAndServe(*addr, mux))
}
