// Command jkasm assembles VM assembly into binary class files, and
// disassembles them back.
//
//	jkasm foo.jasm            # writes foo.jkc
//	jkasm -d foo.jkc          # prints disassembly
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"jkernel/internal/vmkit"
)

func main() {
	disasm := flag.Bool("d", false, "disassemble a .jkc class file")
	out := flag.String("o", "", "output path (default: input with .jkc)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jkasm [-d] [-o out] file")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}

	if *disasm {
		def, err := vmkit.DecodeClass(data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(vmkit.Disassemble(def))
		return
	}

	def, err := vmkit.Assemble(string(data))
	if err != nil {
		log.Fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(path, ".jasm") + ".jkc"
	}
	if err := os.WriteFile(dst, vmkit.EncodeClass(def), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: class %s, %d methods\n", dst, def.Name, len(def.Methods))
}
