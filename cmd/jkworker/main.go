// Command jkworker runs one worker kernel process: a full J-Kernel whose
// exported capabilities are served to a supervisor over the remote wire
// protocol. It is the process a supervisor's worker pool spawns (and
// restarts) to shard protection domains across cores and survive crashes.
//
//	jkworker -listen unix:/tmp/w0.sock
//	jkworker -listen tcp:127.0.0.1:7070 -services echo,counter,kv
//
// The built-in services are demonstrations; real deployments embed
// remote.RunWorker (or jkernel.RunWorker) with their own Setup.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"

	"jkernel/internal/core"
	"jkernel/internal/remote"
)

var (
	listenFlag   = flag.String("listen", "unix:/tmp/jkworker.sock", "listen endpoint: unix:PATH or tcp:ADDR")
	servicesFlag = flag.String("services", "echo,counter,kv", "comma-separated services to export")
	quietFlag    = flag.Bool("quiet", false, "suppress startup output")
	debugFlag    = flag.String("debug", "", "serve /debug/jk and /debug/pprof/ on this TCP addr (e.g. 127.0.0.1:0)")
)

func main() {
	// A pool-spawned jkworker is steered by the environment instead.
	remote.MaybeRunWorker(setup(strings.Split(*servicesFlag, ",")))
	flag.Parse()

	network, addr, ok := strings.Cut(*listenFlag, ":")
	if !ok || (network != "unix" && network != "tcp") {
		fmt.Fprintf(os.Stderr, "jkworker: bad -listen %q (want unix:PATH or tcp:ADDR)\n", *listenFlag)
		os.Exit(2)
	}
	cfg := remote.WorkerConfig{
		Network:   network,
		Addr:      addr,
		Setup:     setup(strings.Split(*servicesFlag, ",")),
		DebugAddr: *debugFlag,
	}
	if !*quietFlag {
		cfg.Ready = func(a net.Addr) {
			fmt.Printf("jkworker: pid %d serving %s on %s\n", os.Getpid(), *servicesFlag, a)
		}
		cfg.DebugReady = func(a net.Addr) {
			fmt.Printf("jkworker: debug listener on http://%s/debug/jk\n", a)
		}
	}
	if err := remote.RunWorker(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "jkworker:", err)
		os.Exit(1)
	}
}

// setup builds the worker kernel: one service domain, the requested
// services created as native capabilities and exported by name.
func setup(services []string) func(k *core.Kernel) error {
	return func(k *core.Kernel) error {
		d, err := k.NewDomain(core.DomainConfig{Name: "svc"})
		if err != nil {
			return err
		}
		for _, s := range services {
			var target any
			switch strings.TrimSpace(s) {
			case "echo":
				target = echoService{}
			case "counter":
				target = &counterService{}
			case "kv":
				target = newKVService()
			case "":
				continue
			default:
				return fmt.Errorf("unknown service %q", s)
			}
			cap, err := k.CreateNativeCapability(d, target)
			if err != nil {
				return err
			}
			if err := k.Export(strings.TrimSpace(s), cap); err != nil {
				return err
			}
		}
		return nil
	}
}

// echoService is the null-call / echo demo service.
type echoService struct{}

// Echo returns its argument.
func (echoService) Echo(s string) (string, error) { return s, nil }

// Null does nothing (the remote null-call benchmark target).
func (echoService) Null() error { return nil }

// Pid reports the worker's process id (visible restarts).
func (echoService) Pid() (int64, error) { return int64(os.Getpid()), nil }

// counterService is a per-worker shard of mutable state.
type counterService struct {
	mu sync.Mutex
	n  int64
}

// Add increments the counter and returns the new value.
func (c *counterService) Add(d int64) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
	return c.n, nil
}

// Get returns the current value.
func (c *counterService) Get() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n, nil
}

// kvService is a tiny keyed store.
type kvService struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newKVService() *kvService { return &kvService{m: make(map[string][]byte)} }

// Put stores value under key.
func (s *kvService) Put(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), value...)
	return nil
}

// Get retrieves the value under key.
func (s *kvService) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if !ok {
		return nil, errors.New("no such key: " + key)
	}
	return append([]byte(nil), v...), nil
}

// Del removes key.
func (s *kvService) Del(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}
