// Command perfgate is the CI perf-regression gate for the wire hot path.
//
// It compares one or more jkbench -json artifacts (the candidates) against
// the checked-in baseline and fails when any timed row regresses beyond
// the tolerance ratio — on µs/op, or on allocs/op for rows that carry an
// allocation column (Table 12). Derived ratio rows (batching speedup,
// leak counts) are informational and never gate; they have their own
// dedicated checks (the telemetry gate, the churn leak regressions).
//
// A row present in the baseline but missing from every candidate is a
// failure too: a gate that silently stops measuring a path is worse than
// one that reports a regression on it.
//
// Usage:
//
//	perfgate [-baseline bench_baseline.json] [-tolerance 1.15] BENCH_a.json [BENCH_b.json ...]
//
// Refreshing the baseline after an intentional perf change:
//
//	go run ./cmd/jkbench -quick -table 8,11,12 -json bench_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type row struct {
	Table     int     `json:"table"`
	Name      string  `json:"name"`
	MicrosPer float64 `json:"us_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	AllocsPer float64 `json:"allocs_per_op"`
	Ratio     float64 `json:"ratio"`
}

type benchDoc struct {
	Generated string `json:"generated"`
	Quick     bool   `json:"quick"`
	Rows      []row  `json:"rows"`
}

func load(path string) (benchDoc, error) {
	var d benchDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

func key(r row) string { return fmt.Sprintf("%d\x00%s", r.Table, r.Name) }

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "checked-in baseline artifact")
	tolerance := flag.Float64("tolerance", 1.15, "allowed candidate/baseline ratio before failing")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: perfgate [-baseline file] [-tolerance r] BENCH_*.json")
		os.Exit(2)
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
		os.Exit(2)
	}

	// Merge every candidate artifact; later files win on duplicate rows so
	// a re-run artifact supersedes an earlier one.
	cand := make(map[string]row)
	quickMismatch := false
	for _, path := range flag.Args() {
		d, err := load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
			os.Exit(2)
		}
		if d.Quick != base.Quick {
			quickMismatch = true
		}
		for _, r := range d.Rows {
			cand[key(r)] = r
		}
	}
	if quickMismatch {
		fmt.Fprintf(os.Stderr, "perfgate: candidate and baseline disagree on -quick; timings are not comparable\n")
		os.Exit(2)
	}

	tol := *tolerance
	failures := 0
	checked := 0
	for _, b := range base.Rows {
		if b.MicrosPer <= 0 {
			continue // derived ratio row: informational, never gates
		}
		c, ok := cand[key(b)]
		if !ok {
			fmt.Printf("FAIL  table %-2d %-55q missing from candidates\n", b.Table, b.Name)
			failures++
			continue
		}
		checked++
		r := c.MicrosPer / b.MicrosPer
		verdict := "ok  "
		if c.MicrosPer > b.MicrosPer*tol {
			verdict = "FAIL"
			failures++
		}
		fmt.Printf("%s  table %-2d %-55q %8.2fus -> %8.2fus  (%.2fx, limit %.2fx)\n",
			verdict, b.Table, b.Name, b.MicrosPer, c.MicrosPer, r, *tolerance)
		if b.AllocsPer > 0 {
			av := "ok  "
			if c.AllocsPer > b.AllocsPer*tol {
				av = "FAIL"
				failures++
			}
			fmt.Printf("%s  table %-2d %-55q %8.1f allocs -> %8.1f allocs  (%.2fx, limit %.2fx)\n",
				av, b.Table, b.Name, b.AllocsPer, c.AllocsPer, c.AllocsPer/b.AllocsPer, *tolerance)
		}
	}
	if failures > 0 {
		fmt.Printf("perfgate: %d regression(s) across %d gated row(s)\n", failures, checked)
		os.Exit(1)
	}
	fmt.Printf("perfgate: %d row(s) within %.2fx of baseline\n", checked, *tolerance)
}
