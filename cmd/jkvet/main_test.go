package main

import (
	"testing"

	"jkernel/internal/analysis/atest"
)

// TestRepoIsCleanUnderAllPasses is the meta-test: the whole repository
// must be jkvet-clean, so a regression fails `go test ./...` on any
// machine, not just the CI jkvet step. New violations are either fixed
// or suppressed with `//jk:allow(pass) justification`.
func TestRepoIsCleanUnderAllPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short mode")
	}
	atest.NoFindings(t, "../..", allPasses, "./...")
}
