// Command jkvet runs the kernel's static-analysis suite: four passes
// that machine-check the invariants the paper's isolation argument
// rests on. See internal/analysis and the pass packages for the rules.
//
// Usage:
//
//	go run ./cmd/jkvet ./...
//	go run ./cmd/jkvet -pass bufown,lockhold ./internal/remote
//
// Findings print as `file:line pass: message`; any finding exits 1.
// Suppress a reviewed, intentional violation with
// `//jk:allow(pass) justification` on the finding's line or the line
// above — the justification is mandatory and checked.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"jkernel/internal/analysis"
	"jkernel/internal/analysis/bufown"
	"jkernel/internal/analysis/capleak"
	"jkernel/internal/analysis/faultpath"
	"jkernel/internal/analysis/load"
	"jkernel/internal/analysis/lockhold"
)

var allPasses = []*analysis.Pass{bufown.Pass, capleak.Pass, faultpath.Pass, lockhold.Pass}

func main() {
	passFlag := flag.String("pass", "", "comma-separated subset of passes to run (default: all)")
	list := flag.Bool("list", false, "list passes and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jkvet [-pass p1,p2] [packages]\n\npasses:\n")
		for _, p := range allPasses {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", p.Name, p.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, p := range allPasses {
			fmt.Printf("%-10s %s\n", p.Name, p.Doc)
		}
		return
	}

	passes := allPasses
	if *passFlag != "" {
		byName := map[string]*analysis.Pass{}
		for _, p := range allPasses {
			byName[p.Name] = p
		}
		passes = nil
		for _, name := range strings.Split(*passFlag, ",") {
			p := byName[strings.TrimSpace(name)]
			if p == nil {
				fmt.Fprintf(os.Stderr, "jkvet: unknown pass %q\n", name)
				os.Exit(2)
			}
			passes = append(passes, p)
		}
	}
	// Every pass name must be registered even when running a subset, so
	// //jk:allow marks for the passes not running don't read as unknown.
	for _, p := range allPasses {
		analysis.RegisterPassNames(p.Name)
	}

	pkgs, err := load.Load("", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jkvet:", err)
		os.Exit(2)
	}
	prog := analysis.NewProgram(pkgs)
	findings := analysis.Run(prog, passes)

	cwd, _ := os.Getwd()
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				f.Pos.Filename = rel
			}
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "jkvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
