// Filesystem: the paper's §2 FileSystemInterface example rebuilt the
// J-Kernel way. The file server hands each client a *capability* carrying
// its access rights and root directory. Unlike the share-anything version,
// access is revocable at any moment, file contents cross by copy (no
// aliasing into the store), and terminating the server propagates failure
// to every client.
package main

import (
	"errors"
	"fmt"
	"log"
	"strings"

	"jkernel"
)

// FileStore is the server's private state. It is never shared: clients
// only ever hold capabilities onto FileView objects.
type FileStore struct {
	files map[string][]byte
}

// FileView is the per-client interface object of §2: rights and root are
// fixed at creation by the server.
type FileView struct {
	store             *FileStore
	root              string
	canRead, canWrite bool
}

// Open returns a copy of the file's contents.
func (v *FileView) Open(name string) ([]byte, error) {
	if !v.canRead {
		return nil, errors.New("no read access")
	}
	data, ok := v.store.files[v.root+"/"+name]
	if !ok {
		return nil, fmt.Errorf("no file %q", name)
	}
	return data, nil // LRMI copies on the way out
}

// Write stores data under the client's root.
func (v *FileView) Write(name string, data []byte) error {
	if !v.canWrite {
		return errors.New("no write access")
	}
	v.store.files[v.root+"/"+name] = data // LRMI copied on the way in
	return nil
}

// List names the files under the client's root.
func (v *FileView) List() (string, error) {
	if !v.canRead {
		return "", errors.New("no read access")
	}
	var names []string
	for n := range v.store.files {
		if strings.HasPrefix(n, v.root+"/") {
			names = append(names, strings.TrimPrefix(n, v.root+"/"))
		}
	}
	return strings.Join(names, ","), nil
}

func main() {
	k := jkernel.New(jkernel.Options{})
	fsDomain, err := k.NewDomain(jkernel.DomainConfig{Name: "filesystem"})
	if err != nil {
		log.Fatal(err)
	}
	alice, err := k.NewDomain(jkernel.DomainConfig{Name: "alice"})
	if err != nil {
		log.Fatal(err)
	}
	bob, err := k.NewDomain(jkernel.DomainConfig{Name: "bob"})
	if err != nil {
		log.Fatal(err)
	}

	store := &FileStore{files: map[string][]byte{}}
	// Per-client capabilities with different protection policies — "by
	// specifying different values for accessRights and rootDirectory ...
	// the file system can enforce different protection policies for
	// different clients".
	aliceCap, err := k.CreateNativeCapability(fsDomain,
		&FileView{store: store, root: "alice", canRead: true, canWrite: true})
	if err != nil {
		log.Fatal(err)
	}
	bobCap, err := k.CreateNativeCapability(fsDomain,
		&FileView{store: store, root: "bob", canRead: true, canWrite: false})
	if err != nil {
		log.Fatal(err)
	}
	store.files["bob/readme"] = []byte("bob's read-only data")

	// Alice reads and writes in her subtree.
	aliceTask := k.NewTask(alice, "alice")
	var af struct {
		Open  func(string) ([]byte, error)
		Write func(string, []byte) error
		List  func() (string, error)
	}
	if err := aliceCap.Bind(&af); err != nil {
		log.Fatal(err)
	}
	if err := af.Write("notes", []byte("meet at noon")); err != nil {
		log.Fatal(err)
	}
	data, _ := af.Open("notes")
	fmt.Printf("alice reads her file: %q\n", data)

	// The copy convention protects the store: mutating what Open returned
	// does not change the server's copy.
	data[0] = 'X'
	again, _ := af.Open("notes")
	fmt.Printf("store unaffected by client mutation: %q\n", again)
	aliceTask.Close()

	// Bob is read-only and rooted elsewhere: least privilege.
	bobTask := k.NewTask(bob, "bob")
	var bf struct {
		Open  func(string) ([]byte, error)
		Write func(string, []byte) error
		List  func() (string, error)
	}
	if err := bobCap.Bind(&bf); err != nil {
		log.Fatal(err)
	}
	if _, err := bf.Open("notes"); err != nil {
		fmt.Println("bob cannot see alice's subtree:", err)
	}
	if err := bf.Write("readme", []byte("defaced")); err != nil {
		fmt.Println("bob cannot write:", err)
	}

	// Revocation: the server cuts Bob off; his stub turns to stone.
	bobCap.Revoke()
	if _, err := bf.Open("readme"); err == jkernel.ErrRevoked {
		fmt.Println("bob after revocation:", err)
	}
	bobTask.Close()

	// Termination: the server dies; Alice's capability fails cleanly
	// instead of leaving her holding zombie objects.
	fsDomain.Terminate("maintenance")
	aliceTask2 := k.NewTask(alice, "alice2")
	defer aliceTask2.Close()
	if _, err := aliceCap.Invoke("Open", "notes"); err == jkernel.ErrDomainTerminated {
		fmt.Println("alice after server termination:", err)
	}
}
