// Webserver: the paper's §4 extensible HTTP server. An off-the-shelf
// net/http front server (standing in for IIS) hosts the J-Kernel bridge;
// user servlets are uploaded as bytecode over HTTP, each into its own
// protection domain, and can be terminated and hot-replaced while the
// server keeps running. A deliberately crashing native servlet shows
// failure isolation.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	"jkernel"
	"jkernel/servlet"
)

// statusServlet is a native Go servlet.
type statusServlet struct{}

func (statusServlet) Service(req *servlet.Request) (*servlet.Response, error) {
	return &servlet.Response{
		Status: 200,
		Body:   []byte("server is healthy; path=" + req.Path),
	}, nil
}

// crashServlet fails on every request — and harms nobody else.
type crashServlet struct{}

func (crashServlet) Service(req *servlet.Request) (*servlet.Response, error) {
	var boom []int
	_ = boom[42] // deliberate out-of-range panic
	return nil, nil
}

func main() {
	k := jkernel.New(jkernel.Options{})
	bridge, err := servlet.NewBridge(k)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := bridge.MountNative("status", "/status", statusServlet{}); err != nil {
		log.Fatal(err)
	}
	if _, err := bridge.MountNative("crash", "/crash", crashServlet{}); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	go http.Serve(ln, bridge)
	fmt.Println("extensible server on", base)

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/status")
	fmt.Printf("GET /status -> %d %q\n", code, body)

	// The crashing servlet returns 502; the server and other servlets are
	// untouched — failure isolation in action.
	code, _ = get("/crash")
	fmt.Printf("GET /crash  -> %d (isolated; server still up)\n", code)
	code, _ = get("/status")
	fmt.Printf("GET /status -> %d (still healthy)\n", code)

	// Upload a VM servlet: bytecode travels over HTTP into a fresh domain,
	// is verified, and serves requests.
	src := `
.class CounterServlet implements jk/servlet/Servlet
.field hits I
.method service (Ljk/lang/String;Ljk/lang/String;[B)[B stack 8 locals 0
  load 0
  load 0
  getfield CounterServlet.hits:I
  iconst 1
  iadd
  putfield CounterServlet.hits:I
  sconst "counter page, hit "
  load 0
  getfield CounterServlet.hits:I
  invokestatic jk/lang/String.valueOfInt:(I)Ljk/lang/String;
  invokevirtual jk/lang/String.concat:(Ljk/lang/String;)Ljk/lang/String;
  invokevirtual jk/lang/String.getBytes:()[B
  retv
.end
`
	classData, err := jkernel.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	bundle := servlet.EncodeBundle(map[string][]byte{"CounterServlet": classData})
	resp, err := http.Post(
		base+"/admin/upload?name=counter&prefix=/counter&main=CounterServlet",
		"application/octet-stream", bytes.NewReader(bundle))
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Println("uploaded counter servlet:", resp.Status)

	for i := 0; i < 3; i++ {
		_, body = get("/counter")
		fmt.Println("GET /counter ->", body)
	}

	// Terminate it (revoking its capability) and hot-replace — no server
	// restart, state gone with the domain.
	req, _ := http.NewRequest(http.MethodDelete, base+"/admin/servlet?name=counter", nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		log.Fatal(err)
	}
	fmt.Println("terminated counter servlet")

	resp, err = http.Post(
		base+"/admin/upload?name=counter2&prefix=/counter&main=CounterServlet",
		"application/octet-stream", bytes.NewReader(bundle))
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	_, body = get("/counter")
	fmt.Println("after hot-replace:", body)
}
