// The cluster example runs the J-Kernel's remote-kernel subsystem end to
// end: a supervisor kernel shards work across two worker kernel
// *processes*, invoking their capabilities through proxies that behave
// exactly like local ones. It then demonstrates the two failure paths the
// design is about:
//
//   - revocation propagates across the wire: a worker revoking an exported
//     capability faults the supervisor's proxy with ErrRevoked;
//   - a crashed worker surfaces as a capability fault — never as a
//     supervisor crash — and the pool restarts the process, after which
//     the supervisor reconnects and resumes.
//
// Run: go run ./examples/cluster
// (the binary re-executes itself as the worker processes).
package main

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"jkernel"
)

func main() {
	// Worker children re-enter main here and never return.
	jkernel.MaybeRunWorker(workerSetup)

	fmt.Println("== J-Kernel cluster: supervisor + 2 worker processes ==")
	sup := jkernel.New(jkernel.Options{})
	app, err := sup.NewDomain(jkernel.DomainConfig{Name: "app"})
	check(err)
	task := sup.NewTask(app, "supervisor")
	defer task.Close()

	pool, err := jkernel.StartWorkerPool(jkernel.WorkerPoolOptions{
		Workers: 2,
		Log:     func(f string, a ...any) { fmt.Printf("  [pool] "+f+"\n", a...) },
	})
	check(err)
	defer pool.Close()

	// Connect to both workers and import their counter shards.
	conns := make([]*jkernel.RemoteConn, pool.Size())
	counters := make([]*jkernel.Capability, pool.Size())
	for i := 0; i < pool.Size(); i++ {
		conns[i], err = pool.Worker(i).Dial(sup, 10*time.Second)
		check(err)
		counters[i], err = conns[i].Import("counter")
		check(err)
	}
	fmt.Println("-- imported 'counter' from both workers")

	// Shard increments across the workers; each holds its own state.
	for n := 0; n < 10; n++ {
		shard := n % len(counters)
		_, err := counters[shard].InvokeFrom(task, "Add", int64(1))
		check(err)
	}
	for i, c := range counters {
		res, err := c.InvokeFrom(task, "Get")
		check(err)
		fmt.Printf("-- worker %d counter shard: %v\n", i, res[0])
	}

	// Fan out asynchronously: queue one future per call across both
	// shards, flush, and join once. Calls queued on a connection coalesce
	// into multi-invoke frames (the paper's Table 4 lesson applied to the
	// wire), so this wave costs a handful of frames, not 100 round trips.
	const wave = 100
	futs := make([]*jkernel.Future, 0, wave)
	for n := 0; n < wave; n++ {
		shard := n % len(counters)
		futs = append(futs, counters[shard].InvokeAsyncFrom(task, "Add", int64(1)))
	}
	for _, c := range conns {
		c.Flush()
	}
	check(jkernel.WaitAll(futs...))
	for i, c := range counters {
		res, err := c.InvokeFrom(task, "Get")
		check(err)
		fmt.Printf("-- after async fan-out of %d: worker %d shard at %v\n", wave, i, res[0])
	}

	// Revocation across the wire: ask worker 1 to revoke its counter.
	admin, err := conns[1].Import("admin")
	check(err)
	_, err = admin.InvokeFrom(task, "RevokeCounter")
	check(err)
	_, err = counters[1].InvokeFrom(task, "Add", int64(1))
	if !errors.Is(err, jkernel.ErrRevoked) {
		fail("expected ErrRevoked after remote revocation, got: %v", err)
	}
	fmt.Println("-- worker 1 revoked its counter: supervisor proxy faults with ErrRevoked")

	// Crash drill: kill worker 0 outright. The supervisor observes a
	// capability fault, not a crash.
	check(pool.Worker(0).Kill())
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err = counters[0].InvokeFrom(task, "Add", int64(1))
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			fail("worker 0 death never surfaced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !errors.Is(err, jkernel.ErrRevoked) {
		fail("expected a capability fault after worker crash, got: %v", err)
	}
	fmt.Println("-- worker 0 killed: supervisor observes a capability fault and keeps running")

	// The pool restarts the worker; reconnect and resume with fresh state.
	conn, err := pool.Worker(0).Dial(sup, 15*time.Second)
	check(err)
	defer conn.Close()
	counter, err := conn.Import("counter")
	check(err)
	res, err := counter.InvokeFrom(task, "Add", int64(1))
	check(err)
	fmt.Printf("-- worker 0 restarted (restarts=%d): fresh counter shard at %v\n",
		pool.Worker(0).Restarts(), res[0])

	fmt.Println("== cluster demo complete ==")
}

// workerSetup is the worker kernel body: a counter shard, plus an admin
// service that can revoke the counter (the wire-revocation demo).
func workerSetup(k *jkernel.Kernel) error {
	d, err := k.NewDomain(jkernel.DomainConfig{Name: "svc"})
	if err != nil {
		return err
	}
	counter, err := k.CreateNativeCapability(d, &counterSvc{})
	if err != nil {
		return err
	}
	if err := k.Export("counter", counter); err != nil {
		return err
	}
	admin, err := k.CreateNativeCapability(d, &adminSvc{counter: counter})
	if err != nil {
		return err
	}
	return k.Export("admin", admin)
}

type counterSvc struct {
	mu sync.Mutex
	n  int64
}

// Add increments the shard (inbound remote calls run concurrently).
func (c *counterSvc) Add(d int64) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
	return c.n, nil
}

// Get returns the shard value.
func (c *counterSvc) Get() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n, nil
}

type adminSvc struct{ counter *jkernel.Capability }

// RevokeCounter revokes the worker's counter capability; every remote
// proxy for it faults.
func (a *adminSvc) RevokeCounter() error {
	a.counter.Revoke()
	return nil
}

func check(err error) {
	if err != nil {
		fail("%v", err)
	}
}

func fail(f string, a ...any) {
	fmt.Fprintf(os.Stderr, "cluster: "+f+"\n", a...)
	os.Exit(1)
}
