// The cluster example runs the J-Kernel's remote-kernel subsystem end to
// end: a supervisor kernel shards work across two worker kernel
// *processes*, invoking their capabilities through proxies that behave
// exactly like local ones. It then demonstrates the two failure paths the
// design is about:
//
//   - revocation propagates across the wire: a worker revoking an exported
//     capability faults the supervisor's proxy with ErrRevoked;
//   - a crashed worker surfaces as a capability fault — never as a
//     supervisor crash — and the pool restarts the process, after which
//     the supervisor reconnects and resumes.
//
// It then demonstrates the observability layer: a traced relay chain
// (supervisor → worker 0 → worker 1) is stitched into one trace and
// retrieved from the supervisor's /debug/jk endpoint, alongside a
// telemetry snapshot with the cross-domain call graph.
//
// Run: go run ./examples/cluster
// (the binary re-executes itself as the worker processes).
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"jkernel"
	"jkernel/servlet"
)

func main() {
	// Worker children re-enter main here and never return.
	jkernel.MaybeRunWorker(workerSetup)

	fmt.Println("== J-Kernel cluster: supervisor + 2 worker processes ==")
	sup := jkernel.New(jkernel.Options{TelemetryNode: "supervisor"})
	app, err := sup.NewDomain(jkernel.DomainConfig{Name: "app"})
	check(err)
	task := sup.NewTask(app, "supervisor")
	defer task.Close()

	pool, err := jkernel.StartWorkerPool(jkernel.WorkerPoolOptions{
		Workers: 2,
		Log:     func(f string, a ...any) { fmt.Printf("  [pool] "+f+"\n", a...) },
	})
	check(err)
	defer pool.Close()

	// Connect to both workers and import their counter shards.
	conns := make([]*jkernel.RemoteConn, pool.Size())
	counters := make([]*jkernel.Capability, pool.Size())
	for i := 0; i < pool.Size(); i++ {
		conns[i], err = pool.Worker(i).Dial(sup, 10*time.Second)
		check(err)
		counters[i], err = conns[i].Import("counter")
		check(err)
	}
	fmt.Println("-- imported 'counter' from both workers")

	// Shard increments across the workers; each holds its own state.
	for n := 0; n < 10; n++ {
		shard := n % len(counters)
		_, err := counters[shard].InvokeFrom(task, "Add", int64(1))
		check(err)
	}
	for i, c := range counters {
		res, err := c.InvokeFrom(task, "Get")
		check(err)
		fmt.Printf("-- worker %d counter shard: %v\n", i, res[0])
	}

	// Fan out asynchronously: queue one future per call across both
	// shards, flush, and join once. Calls queued on a connection coalesce
	// into multi-invoke frames (the paper's Table 4 lesson applied to the
	// wire), so this wave costs a handful of frames, not 100 round trips.
	const wave = 100
	futs := make([]*jkernel.Future, 0, wave)
	for n := 0; n < wave; n++ {
		shard := n % len(counters)
		futs = append(futs, counters[shard].InvokeAsyncFrom(task, "Add", int64(1)))
	}
	for _, c := range conns {
		c.Flush()
	}
	check(jkernel.WaitAll(futs...))
	for i, c := range counters {
		res, err := c.InvokeFrom(task, "Get")
		check(err)
		fmt.Printf("-- after async fan-out of %d: worker %d shard at %v\n", wave, i, res[0])
	}

	// --- Observability ---------------------------------------------------
	// A traced relay chain: the supervisor begins a trace and asks worker 0
	// to Relay into worker 1's counter. The capability argument is the
	// supervisor's proxy to worker 1, so the hop routes worker0 → supervisor
	// → worker1 — three kernels, one trace id carried in every frame.
	relay, err := conns[0].Import("relay")
	check(err)
	tc := task.BeginTrace()
	res, err := relay.InvokeFrom(task, "Relay", counters[1], int64(1))
	check(err)
	task.EndTrace()
	fmt.Printf("-- traced relay chain returned %v under trace %s\n",
		res[0], jkernel.FormatTraceID(tc.TraceID))

	// Serve /debug/jk on the supervisor, stitching worker spans in via each
	// worker's exported jk.telemetry capability, and query the trace back.
	queryTask := sup.NewDetachedTask(app, "trace-query")
	remoteSpans := func(traceID uint64) []jkernel.Span {
		var out []jkernel.Span
		for _, c := range conns {
			tcap, err := c.Import("jk.telemetry")
			if err != nil {
				continue
			}
			res, err := tcap.InvokeFrom(queryTask, "Spans", jkernel.FormatTraceID(traceID))
			if err != nil {
				continue
			}
			raw, _ := res[0].([]byte)
			var spans []jkernel.Span
			if json.Unmarshal(raw, &spans) == nil {
				out = append(out, spans...)
			}
		}
		return out
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	defer ln.Close()
	go http.Serve(ln, jkernel.DebugHandlerWith(sup, remoteSpans))

	var page struct {
		Trace string         `json:"trace"`
		Spans []jkernel.Span `json:"spans"`
	}
	getJSON(fmt.Sprintf("http://%s/debug/jk?trace=%s", ln.Addr(), jkernel.FormatTraceID(tc.TraceID)), &page)
	nodes := map[string]bool{}
	fmt.Printf("-- /debug/jk?trace=%s: %d spans\n", page.Trace, len(page.Spans))
	for _, s := range page.Spans {
		nodes[s.Node] = true
		fmt.Printf("     [%s] %-6s %s -> %s %s (%v)\n", s.Node, s.Kind, s.Caller, s.Callee, s.Method, s.Dur)
	}
	if len(page.Spans) < 3 || len(nodes) < 2 {
		fail("trace did not stitch: %d spans across %d kernels", len(page.Spans), len(nodes))
	}
	fmt.Printf("-- trace stitched across %d kernels\n", len(nodes))

	// Telemetry snapshot: the supervisor's own registry, including the
	// cross-domain call graph and wire counters.
	snap := jkernel.Metrics(sup).Snapshot()
	fmt.Printf("-- supervisor snapshot: %d async starts, %d batch frames out\n",
		snap.Counters["core.async.starts"], snap.Counters["remote.frames_out.batch_invoke"])
	if h, ok := snap.Histograms["remote.invoke.latency_ns"]; ok {
		fmt.Printf("   wire invoke latency: n=%d p50=%.0fns p99=%.0fns\n", h.Count, h.P50, h.P99)
	}
	for _, e := range snap.CallGraph {
		fmt.Printf("   edge %s -> %s: %d calls\n", e.Caller, e.Callee, e.Calls)
	}

	// --- Three-party handoff ---------------------------------------------
	// The supervisor hands its worker-1 counter proxy to worker 0. A naive
	// implementation would relay every worker-0 call through the
	// supervisor forever; instead the re-export mints a handoff ticket and
	// worker 0 redeems it with worker 1 directly, silently dropping the
	// middle hop. The proof is in the supervisor's own telemetry: a burst
	// of worker-0 -> worker-1 calls adds zero inbound invokes and zero new
	// call-graph edges at the supervisor.
	holder, err := conns[0].Import("holder")
	check(err)
	_, err = holder.InvokeFrom(task, "Set", counters[1])
	check(err)
	shortenBy := time.Now().Add(10 * time.Second)
	for {
		res, err = holder.InvokeFrom(task, "Direct")
		check(err)
		if res[0] == true {
			break
		}
		if time.Now().After(shortenBy) {
			fail("handoff never shortened worker 0's route to worker 1")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("-- worker 0 redeemed the handoff ticket: its worker-1 route is direct")

	before := jkernel.Metrics(sup).Snapshot()
	for n := 0; n < 20; n++ {
		_, err = holder.InvokeFrom(task, "Call")
		check(err)
	}
	after := jkernel.Metrics(sup).Snapshot()
	relayed := (after.Counters["remote.frames_in.invoke"] - before.Counters["remote.frames_in.invoke"]) +
		(after.Counters["remote.frames_in.batch_invoke"] - before.Counters["remote.frames_in.batch_invoke"])
	if relayed != 0 {
		fail("worker->worker calls relayed %d invoke frames through the supervisor", relayed)
	}
	if len(after.CallGraph) != len(before.CallGraph) {
		fail("worker->worker calls grew the supervisor's call graph (%d -> %d edges)",
			len(before.CallGraph), len(after.CallGraph))
	}
	fmt.Println("-- 20 worker-0 -> worker-1 calls: zero invokes, zero new call-graph edges at the supervisor")

	// Revocation across the wire: ask worker 1 to revoke its counter.
	admin, err := conns[1].Import("admin")
	check(err)
	_, err = admin.InvokeFrom(task, "RevokeCounter")
	check(err)
	_, err = counters[1].InvokeFrom(task, "Add", int64(1))
	if !errors.Is(err, jkernel.ErrRevoked) {
		fail("expected ErrRevoked after remote revocation, got: %v", err)
	}
	fmt.Println("-- worker 1 revoked its counter: supervisor proxy faults with ErrRevoked")

	// Crash drill: kill worker 0 outright. The supervisor observes a
	// capability fault, not a crash.
	check(pool.Worker(0).Kill())
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err = counters[0].InvokeFrom(task, "Add", int64(1))
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			fail("worker 0 death never surfaced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !errors.Is(err, jkernel.ErrRevoked) {
		fail("expected a capability fault after worker crash, got: %v", err)
	}
	fmt.Println("-- worker 0 killed: supervisor observes a capability fault and keeps running")

	// The pool restarts the worker; reconnect and resume with fresh state.
	conn, err := pool.Worker(0).Dial(sup, 15*time.Second)
	check(err)
	defer conn.Close()
	counter, err := conn.Import("counter")
	check(err)
	res, err = counter.InvokeFrom(task, "Add", int64(1))
	check(err)
	fmt.Printf("-- worker 0 restarted (restarts=%d): fresh counter shard at %v\n",
		pool.Worker(0).Restarts(), res[0])

	// --- Cluster control plane -------------------------------------------
	// Everything above drives workers by hand. The scheduler automates it:
	// a bridge fronts servlets placed across a managed pool, and a crashed
	// worker's servlets fail over to survivors within a probe interval.
	fmt.Println("-- starting control plane: bridge + 2 scheduled workers (consistent-hash)")
	bridge, err := servlet.NewBridge(sup)
	check(err)
	cluster, err := jkernel.StartCluster(jkernel.ClusterOptions{
		Kernel:        sup,
		Bridge:        bridge,
		MinWorkers:    2,
		Strategy:      jkernel.ConsistentHash(),
		ProbeInterval: 100 * time.Millisecond,
		Autoscale:     jkernel.ClusterAutoscale{Disabled: true},
	})
	check(err)
	defer cluster.Close()
	for _, name := range []string{"alpha", "beta", "gamma"} {
		check(cluster.Deploy(name, "/"+name+"/", jkernel.DeploySpec{Kind: "native", Impl: "hello"}))
	}
	stats := jkernel.ClusterStats(cluster)
	for _, sv := range stats.Servlets {
		fmt.Printf("   servlet %q placed on worker %d\n", sv.Name, sv.Worker)
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	defer cln.Close()
	go http.Serve(cln, bridge)
	fmt.Printf("-- GET /alpha/hi: %s\n", httpGet(fmt.Sprintf("http://%s/alpha/hi", cln.Addr())))

	// Failover drill: SIGKILL the worker hosting "alpha". The pool
	// restarts the process; meanwhile the scheduler re-places alpha onto
	// the survivor, and — the strategy being sticky — pulls it home once
	// the restarted worker passes readiness.
	owner := -1
	for _, sv := range jkernel.ClusterStats(cluster).Servlets {
		if sv.Name == "alpha" {
			owner = sv.Worker
		}
	}
	for _, w := range cluster.Pool().Workers() {
		if w.Index == owner {
			check(w.Kill())
		}
	}
	fmt.Printf("-- killed worker %d (owner of alpha)\n", owner)
	deadline = time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/alpha/hi", cln.Addr()))
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				fmt.Printf("-- alpha failed over: %s\n", body)
				break
			}
		}
		if time.Now().After(deadline) {
			fail("alpha never failed over")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stats = jkernel.ClusterStats(cluster)
	fmt.Printf("-- control plane: %d replacement(s), %d move(s); workers:\n", stats.Replaces, stats.Moves)
	for _, w := range stats.Workers {
		fmt.Printf("   worker %d: %s (restarts=%d, servlets=%v)\n", w.Worker, w.State, w.Restarts, w.Servlets)
	}

	fmt.Println("== cluster demo complete ==")
}

// helloServlet is the control-plane demo's native servlet: its body names
// the worker process serving it, so failover is visible in the output.
type helloServlet struct{}

func (helloServlet) Service(req *servlet.Request) (*servlet.Response, error) {
	return &servlet.Response{
		Status: 200,
		Body:   []byte(fmt.Sprintf("hello from pid %d: %s", os.Getpid(), req.Path)),
	}, nil
}

// httpGet fetches url and returns the body, failing the demo on error.
func httpGet(url string) string {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	check(err)
	if resp.StatusCode != http.StatusOK {
		fail("GET %s: %s: %s", url, resp.Status, body)
	}
	return string(body)
}

// workerSetup is the worker kernel body: a counter shard, plus an admin
// service that can revoke the counter (the wire-revocation demo).
func workerSetup(k *jkernel.Kernel) error {
	d, err := k.NewDomain(jkernel.DomainConfig{Name: "svc"})
	if err != nil {
		return err
	}
	counter, err := k.CreateNativeCapability(d, &counterSvc{})
	if err != nil {
		return err
	}
	if err := k.Export("counter", counter); err != nil {
		return err
	}
	admin, err := k.CreateNativeCapability(d, &adminSvc{counter: counter})
	if err != nil {
		return err
	}
	if err := k.Export("admin", admin); err != nil {
		return err
	}
	relay, err := k.CreateNativeCapability(d, &relaySvc{k: k, d: d})
	if err != nil {
		return err
	}
	if err := k.Export("relay", relay); err != nil {
		return err
	}
	holder, err := k.CreateNativeCapability(d, &holderSvc{k: k, d: d})
	if err != nil {
		return err
	}
	if err := k.Export("holder", holder); err != nil {
		return err
	}
	tel, err := k.CreateNativeCapability(d, &telemetrySvc{k: k})
	if err != nil {
		return err
	}
	if err := k.Export("jk.telemetry", tel); err != nil {
		return err
	}
	// The control-plane demo's deployer: lets the scheduler place "hello"
	// servlets on this worker.
	_, err = jkernel.ServeClusterWorker(k, map[string]func() servlet.Servlet{
		"hello": func() servlet.Servlet { return helloServlet{} },
	})
	return err
}

// holderSvc keeps a capability handed to it and calls through it later —
// the re-export target of the three-party handoff demo. The capability
// the supervisor passes in arrives as a relay through the supervisor;
// the handoff protocol then shortens it to a direct import from its
// origin kernel.
type holderSvc struct {
	k    *jkernel.Kernel
	d    *jkernel.Domain
	mu   sync.Mutex
	held *jkernel.Capability
}

// Set stores the handed-off capability.
func (h *holderSvc) Set(cap *jkernel.Capability) error {
	h.mu.Lock()
	h.held = cap
	h.mu.Unlock()
	return nil
}

// Direct reports whether the held capability's route has been shortened
// past the kernel that handed it over.
func (h *holderSvc) Direct() (bool, error) {
	h.mu.Lock()
	held := h.held
	h.mu.Unlock()
	if held == nil {
		return false, nil
	}
	return jkernel.HandoffDone(held), nil
}

// Call invokes Add(1) through the held capability.
func (h *holderSvc) Call() (int64, error) {
	h.mu.Lock()
	held := h.held
	h.mu.Unlock()
	if held == nil {
		return 0, fmt.Errorf("no capability held")
	}
	t := h.k.NewTask(h.d, "holder")
	defer t.Close()
	res, err := held.InvokeFrom(t, "Add", int64(1))
	if err != nil {
		return 0, err
	}
	out, _ := res[0].(int64)
	return out, nil
}

// relaySvc hops a call onward through whatever capability it is handed —
// here the supervisor passes its worker-1 proxy, so the hop chains
// worker0 → supervisor → worker1 under one trace.
type relaySvc struct {
	k *jkernel.Kernel
	d *jkernel.Domain
}

// Relay invokes Add(d) on the given capability and returns its result.
func (s *relaySvc) Relay(cap *jkernel.Capability, d int64) (int64, error) {
	t := s.k.NewTask(s.d, "relay")
	defer t.Close()
	res, err := cap.InvokeFrom(t, "Add", d)
	if err != nil {
		return 0, err
	}
	out, _ := res[0].(int64)
	return out, nil
}

// telemetrySvc exports the worker's recorded spans so the supervisor can
// stitch cross-process traces from its own /debug/jk endpoint.
type telemetrySvc struct{ k *jkernel.Kernel }

// Spans returns the worker's retained spans for one trace id, as JSON.
func (t *telemetrySvc) Spans(traceHex string) ([]byte, error) {
	id, err := jkernel.ParseTraceID(traceHex)
	if err != nil {
		return nil, err
	}
	return json.Marshal(jkernel.Traces(t.k).TraceSpans(id))
}

type counterSvc struct {
	mu sync.Mutex
	n  int64
}

// Add increments the shard (inbound remote calls run concurrently).
func (c *counterSvc) Add(d int64) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
	return c.n, nil
}

// Get returns the shard value.
func (c *counterSvc) Get() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n, nil
}

type adminSvc struct{ counter *jkernel.Capability }

// RevokeCounter revokes the worker's counter capability; every remote
// proxy for it faults.
func (a *adminSvc) RevokeCounter() error {
	a.counter.Revoke()
	return nil
}

func check(err error) {
	if err != nil {
		fail("%v", err)
	}
}

func fail(f string, a ...any) {
	fmt.Fprintf(os.Stderr, "cluster: "+f+"\n", a...)
	os.Exit(1)
}

// getJSON fetches url and decodes the JSON body into v.
func getJSON(url string, v any) {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	check(err)
	if resp.StatusCode != http.StatusOK {
		fail("GET %s: %s: %s", url, resp.Status, body)
	}
	check(json.Unmarshal(body, v))
}
