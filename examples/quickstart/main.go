// Quickstart: two protection domains in one process, communicating only
// through revocable capabilities — the core of the J-Kernel model.
//
// Part 1 uses native Go objects as capability targets. Part 2 loads
// verified bytecode into a VM domain and calls through a generated stub,
// exactly as the paper's Java system works.
package main

import (
	"fmt"
	"log"

	"jkernel"
)

// Greeter is a service one domain exports to another. Remote methods are
// the exported methods whose last result is error.
type Greeter struct {
	Lang string
}

// Greet builds a greeting.
func (g *Greeter) Greet(name string) (string, error) {
	return fmt.Sprintf("[%s] hello, %s", g.Lang, name), nil
}

// Redact mutates its argument — safely: LRMI hands it a copy.
func (g *Greeter) Redact(data []byte) ([]byte, error) {
	for i := range data {
		data[i] = '*'
	}
	return data, nil
}

func main() {
	k := jkernel.New(jkernel.Options{})

	server, err := k.NewDomain(jkernel.DomainConfig{Name: "server"})
	if err != nil {
		log.Fatal(err)
	}
	client, err := k.NewDomain(jkernel.DomainConfig{Name: "client"})
	if err != nil {
		log.Fatal(err)
	}

	// --- Part 1: native capabilities -----------------------------------
	cap, err := k.CreateNativeCapability(server, &Greeter{Lang: "en"})
	if err != nil {
		log.Fatal(err)
	}
	if err := k.Repository().Bind("greeter", cap); err != nil {
		log.Fatal(err)
	}

	// The client goroutine enters its domain with a Task.
	task := k.NewTask(client, "main")
	defer task.Close()

	got := k.Repository().Lookup("greeter")
	res, err := got.Invoke("Greet", "world")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dynamic invoke:", res[0])

	// Typed stubs via Bind — the Go analog of casting to a remote
	// interface.
	var stub struct {
		Greet  func(name string) (string, error)
		Redact func(data []byte) ([]byte, error)
	}
	if err := got.Bind(&stub); err != nil {
		log.Fatal(err)
	}
	msg, err := stub.Greet("again")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("typed stub:   ", msg)

	// Arguments cross by copy: the callee cannot scribble on our buffer.
	mine := []byte("secret")
	redacted, _ := stub.Redact(mine)
	fmt.Printf("redacted=%s, mine is still %q\n", redacted, mine)

	// Revocation: one call, then the rug is pulled.
	cap.Revoke()
	if _, err := stub.Greet("too late"); err == jkernel.ErrRevoked {
		fmt.Println("after revoke: ", err)
	}

	// --- Part 2: a VM domain with verified bytecode ---------------------
	// The adder domain loads a class implementing a remote interface; the
	// kernel generates a bytecode stub and the call crosses domains under
	// the copying convention.
	adderIface := jkernel.MustAssemble(`
.class Adder interface implements jk/kernel/Remote
.method add (II)I
.end
`)
	adderImpl := jkernel.MustAssemble(`
.class AdderImpl implements Adder
.method add (II)I stack 4 locals 0
  load 1
  load 2
  iadd
  retv
.end
`)
	vmDomain, err := k.NewDomain(jkernel.DomainConfig{
		Name:    "vm-adder",
		Classes: map[string][]byte{"Adder": adderIface, "AdderImpl": adderImpl},
	})
	if err != nil {
		log.Fatal(err)
	}
	target, err := vmDomain.NewInstance("AdderImpl")
	if err != nil {
		log.Fatal(err)
	}
	vmCap, err := k.CreateVMCapability(vmDomain, target)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := vmCap.InvokeVM(task, "add", 40, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("vm capability: 40 + 2 =", sum)

	// Terminating the domain revokes everything it created.
	vmDomain.Terminate("demo over")
	if _, err := vmCap.InvokeVM(task, "add", 1, 1); err != nil {
		fmt.Println("after terminate:", err)
	}

	// Resource accounting survives the domain.
	st := vmDomain.Stats()
	fmt.Printf("vm-adder account: %d alloc bytes, %d interp steps, %d class bytes\n",
		st.AllocBytes, st.Steps, st.ClassBytes)
}
