// CS314: the course toolchain that motivated the J-Kernel, as isolated
// servlets. A MiniC program travels through the compiler, assembler, and
// linker servlets — each in its own protection domain behind the bridge —
// and finally runs on the C3 emulator servlet. Terminating the compiler
// domain mid-course leaves the rest of the toolchain serving.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"jkernel"
	"jkernel/servlet"
	"jkernel/toolchain"
)

const program = `
// Greatest common divisor, then a few Fibonacci numbers.
func gcd(a, b) {
  while (b != 0) {
    var t = b;
    b = a % b;
    a = t;
  }
  return a;
}

func fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}

func main() {
  print(gcd(1071, 462));
  var i = 0;
  while (i < 8) {
    print(fib(i));
    i = i + 1;
  }
}
`

func main() {
	k := jkernel.New(jkernel.Options{})
	bridge, err := servlet.NewBridge(k)
	if err != nil {
		log.Fatal(err)
	}
	if err := toolchain.MountServlets(bridge); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, bridge)
	base := "http://" + ln.Addr().String()
	fmt.Println("toolchain server on", base)

	post := func(path string, body []byte) []byte {
		resp, err := http.Post(base+path, "text/plain", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			log.Fatalf("%s: %s: %s", path, resp.Status, out)
		}
		return out
	}

	// compile -> assemble -> link -> run, each hop a different domain.
	asm := post("/cs314/compile", []byte(program))
	fmt.Printf("compiled: %d lines of C3 assembly\n", strings.Count(string(asm), "\n"))

	obj := post("/cs314/assemble?unit=prog", asm)
	fmt.Printf("assembled: %d-byte object file\n", len(obj))

	exe := post("/cs314/link", servlet.EncodeBundle(map[string][]byte{"prog": obj}))
	fmt.Printf("linked: %d-byte executable\n", len(exe))

	out := post("/cs314/run", exe)
	fmt.Println("program output:")
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		fmt.Println("  ", line)
	}

	// Kill the compiler servlet; the rest of the toolchain still works —
	// the failure isolation Jigsaw lacked.
	if err := bridge.TerminateServlet("cs314-compile"); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/cs314/compile", "text/plain", strings.NewReader(program))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Println("compiler after termination:", resp.Status)

	out = post("/cs314/run", exe)
	fmt.Printf("runner still serving: %d output lines\n",
		strings.Count(string(out), "\n"))
}
