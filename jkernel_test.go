package jkernel

import (
	"errors"
	"strings"
	"testing"
)

// These tests exercise the public facade end to end, the way a downstream
// user would: native capabilities, VM domains with bytecode, repository,
// revocation, termination, and mutual suspicion between three domains.

type ledger struct {
	entries map[string]int64
}

func (l *ledger) Deposit(account string, amount int64) (int64, error) {
	if amount <= 0 {
		return 0, errors.New("non-positive deposit")
	}
	l.entries[account] += amount
	return l.entries[account], nil
}

func (l *ledger) Balance(account string) (int64, error) {
	return l.entries[account], nil
}

func TestPublicAPINativeFlow(t *testing.T) {
	k := New(Options{})
	bank, err := k.NewDomain(DomainConfig{Name: "bank"})
	if err != nil {
		t.Fatal(err)
	}
	teller, err := k.NewDomain(DomainConfig{Name: "teller"})
	if err != nil {
		t.Fatal(err)
	}
	cap, err := k.CreateNativeCapability(bank, &ledger{entries: map[string]int64{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Repository().Bind("ledger", cap); err != nil {
		t.Fatal(err)
	}

	task := k.NewTask(teller, "teller")
	defer task.Close()

	got := k.Repository().Lookup("ledger")
	if got == nil {
		t.Fatal("repository lost the capability")
	}
	var stub struct {
		Deposit func(string, int64) (int64, error)
		Balance func(string) (int64, error)
	}
	if err := got.Bind(&stub); err != nil {
		t.Fatal(err)
	}
	if bal, err := stub.Deposit("alice", 100); err != nil || bal != 100 {
		t.Fatalf("deposit: %d, %v", bal, err)
	}
	if _, err := stub.Deposit("alice", -5); err == nil {
		t.Fatal("error result lost")
	}
	if bal, _ := stub.Balance("alice"); bal != 100 {
		t.Fatalf("balance: %d", bal)
	}

	bank.Terminate("audit")
	if _, err := stub.Balance("alice"); err != ErrDomainTerminated {
		t.Fatalf("after termination: %v", err)
	}
}

func TestPublicAPIVMFlow(t *testing.T) {
	k := New(Options{Profile: ProfileB})
	iface := MustAssemble(`
.class Counter interface implements jk/kernel/Remote
.method bump (I)I
.end
`)
	impl := MustAssemble(`
.class CounterImpl implements Counter
.field total I
.method bump (I)I stack 6 locals 0
  load 0
  load 0
  getfield CounterImpl.total:I
  load 1
  iadd
  putfield CounterImpl.total:I
  load 0
  getfield CounterImpl.total:I
  retv
.end
`)
	host, err := k.NewDomain(DomainConfig{
		Name:    "host",
		Classes: map[string][]byte{"Counter": iface, "CounterImpl": impl},
	})
	if err != nil {
		t.Fatal(err)
	}
	user, err := k.NewDomain(DomainConfig{Name: "user"})
	if err != nil {
		t.Fatal(err)
	}
	target, err := host.NewInstance("CounterImpl")
	if err != nil {
		t.Fatal(err)
	}
	cap, err := k.CreateVMCapability(host, target)
	if err != nil {
		t.Fatal(err)
	}

	task := k.NewTask(user, "user")
	defer task.Close()
	for want := int64(5); want <= 15; want += 5 {
		got, err := cap.InvokeVM(task, "bump", 5)
		if err != nil {
			t.Fatal(err)
		}
		if got.(int64) != want {
			t.Fatalf("bump = %v, want %d", got, want)
		}
	}
	// The callee's state lives in its own domain; stats show the charges.
	if host.Stats().ClassBytes == 0 {
		t.Error("host accounting empty")
	}
	cap.Revoke()
	if _, err := cap.InvokeVM(task, "bump", 1); err == nil {
		t.Fatal("revoked capability still callable")
	}
}

func TestPublicAPIRejectsBadBytecode(t *testing.T) {
	k := New(Options{})
	// Forged pointer: returns an int as an object reference.
	bad, err := Assemble(`
.class Forge
.method static f ()Ljk/lang/Object; stack 4 locals 1
  iconst 1234
  retv
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = k.NewDomain(DomainConfig{Name: "evil", Classes: map[string][]byte{"Forge": bad}})
	if err != nil {
		t.Fatal(err) // lazy loading: domain creation is fine
	}
	d := k.DomainByName("evil")
	if _, err := d.NS.Resolve("Forge"); err == nil || !strings.Contains(err.Error(), "verify") {
		t.Fatalf("verifier did not reject forged pointer: %v", err)
	}
}

// Mutual suspicion: two client domains hold capabilities onto one server;
// revoking one leaves the other working, and neither can reach the other.
func TestMutualSuspicion(t *testing.T) {
	k := New(Options{})
	server, _ := k.NewDomain(DomainConfig{Name: "server"})
	c1, _ := k.NewDomain(DomainConfig{Name: "client1"})
	c2, _ := k.NewDomain(DomainConfig{Name: "client2"})

	led := &ledger{entries: map[string]int64{}}
	cap1, err := k.CreateNativeCapability(server, led)
	if err != nil {
		t.Fatal(err)
	}
	cap2, err := k.CreateNativeCapability(server, led)
	if err != nil {
		t.Fatal(err)
	}

	t1 := k.NewTask(c1, "t1")
	if _, err := cap1.InvokeFrom(t1, "Deposit", "x", int64(1)); err != nil {
		t.Fatal(err)
	}
	t1.Close()

	cap1.Revoke()

	t2 := k.NewTask(c2, "t2")
	defer t2.Close()
	if _, err := cap2.InvokeFrom(t2, "Deposit", "x", int64(1)); err != nil {
		t.Fatalf("sibling capability harmed by revocation: %v", err)
	}
	if _, err := cap1.InvokeFrom(t2, "Balance", "x"); err != ErrRevoked {
		t.Fatalf("revoked capability alive: %v", err)
	}
}
