// Benchmarks regenerating every table of the paper's evaluation.
// Run: go test -bench=. -benchmem .    (or cmd/jkbench for paper-format
// output). EXPERIMENTS.md records paper-vs-measured for each row.
package jkernel

import (
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"testing"

	"jkernel/internal/core"
	"jkernel/internal/fastcopy"
	"jkernel/internal/oskit"
	"jkernel/internal/remote"
	"jkernel/internal/seri"
	"jkernel/internal/ukern"
	"jkernel/internal/vmkit"
)

// --- Table 1: cost of null method invocations ----------------------------
// Paper rows (µs on MS-VM / Sun-VM): regular 0.04/0.03, interface
// 0.54/0.05, thread info lookup 0.55/0.29, lock pair 0.20/1.91, null LRMI
// 2.22/5.41. Profile A models MS-VM's cost shape, profile B Sun-VM's.

func benchTable1(b *testing.B, profile vmkit.Profile) {
	f := newVMBench(b, profile)
	defer f.close()
	rows := []struct {
		name, method string
	}{
		{"RegularInvocation", "runRegular"},
		{"InterfaceInvocation", "runIface"},
		{"AcquireReleaseLock", "runLock"},
		{"NullLRMI", "runLRMI"},
		{"LoopBaseline", "baseline"},
	}
	for _, row := range rows {
		b.Run(row.name, func(b *testing.B) {
			b.ReportAllocs()
			f.run(b, row.method, b.N)
		})
	}
	b.Run("ThreadInfoLookup", func(b *testing.B) {
		id := f.task.Thread.ID
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if f.k.VM.LookupThread(id) == nil {
				b.Fatal("lookup failed")
			}
		}
	})
}

func BenchmarkTable1_VMA(b *testing.B) { benchTable1(b, vmkit.ProfileA) }
func BenchmarkTable1_VMB(b *testing.B) { benchTable1(b, vmkit.ProfileB) }

// --- Table 2: local RPC costs ---------------------------------------------
// Paper (µs): NT-RPC 109, COM out-of-proc 99, COM in-proc 0.03. The
// J-Kernel's LRMI sits ~50x below the OS RPCs.

func BenchmarkTable2_NTRPC_Pipe(b *testing.B) {
	tr, err := oskit.StartPipeServer()
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	payload := []byte{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.RoundTrip(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_COMOutOfProc_TCP(b *testing.B) {
	tr, err := oskit.StartTCPServer()
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	payload := []byte{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.RoundTrip(payload); err != nil {
			b.Fatal(err)
		}
	}
}

var inprocSink byte

func BenchmarkTable2_COMInProc(b *testing.B) {
	s := oskit.InProc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inprocSink = s.Null(byte(i))
	}
}

func BenchmarkTable2_JKernelLRMI(b *testing.B) {
	f := newVMBench(b, vmkit.ProfileA)
	defer f.close()
	b.ResetTimer()
	f.run(b, "runLRMI", b.N)
}

// --- Table 3: double thread switch ----------------------------------------
// Paper (µs): NT-base 8.6, MS-VM 9.8, Sun-VM 10.2. JVMs mapped Java
// threads onto kernel threads, so the faithful row pins goroutines to OS
// threads; the unpinned row is the Go-native ablation.

func pingPong(b *testing.B, pin bool) {
	ping := make(chan struct{})
	pong := make(chan struct{})
	done := make(chan struct{})
	go func() {
		if pin {
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
		}
		for {
			select {
			case <-ping:
				pong <- struct{}{}
			case <-done:
				return
			}
		}
	}()
	if pin {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ping <- struct{}{}
		<-pong
	}
	b.StopTimer()
	close(done)
}

func BenchmarkTable3_NTBase_OSThreads(b *testing.B)    { pingPong(b, true) }
func BenchmarkTable3_Goroutines_Unpinned(b *testing.B) { pingPong(b, false) }

// --- Table 4: argument copying --------------------------------------------
// Paper (µs, MS-VM serialization/fast-copy): 1x10B 104/4.8, 1x100B
// 158/7.7, 10x10B 193/23.3, 1x1000B 633/19.2. Fast copy wins by an order
// of magnitude at 1 KB; many small objects cost more than one big one.

var table4Shapes = []struct {
	name        string
	count, size int
}{
	{"1x10", 1, 10},
	{"1x100", 1, 100},
	{"10x10", 10, 10},
	{"1x1000", 1, 1000},
}

func benchTable4(b *testing.B, profile vmkit.Profile) {
	f := newVMBench(b, profile)
	defer f.close()
	for _, shape := range table4Shapes {
		shape := shape
		b.Run("Serialization/"+shape.name, func(b *testing.B) {
			msg := f.buildChain(b, "MsgS", shape.count, shape.size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.cap.InvokeVM(f.task, "sink", msg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("FastCopy/"+shape.name, func(b *testing.B) {
			msg := f.buildChain(b, "MsgF", shape.count, shape.size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.cap.InvokeVM(f.task, "sinkF", msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable4_VMA(b *testing.B) { benchTable4(b, vmkit.ProfileA) }
func BenchmarkTable4_VMB(b *testing.B) { benchTable4(b, vmkit.ProfileB) }

// Native-path ablation of Table 4: the same shapes as Go values through
// the seri and fastcopy engines directly.
type natNode struct {
	Payload []byte
	Next    *natNode
}

func natChain(count, size int) *natNode {
	var head *natNode
	for i := 0; i < count; i++ {
		head = &natNode{Payload: make([]byte, size), Next: head}
	}
	return head
}

func BenchmarkTable4_NativeEngines(b *testing.B) {
	reg := seri.NewRegistry()
	reg.Register("natNode", natNode{})
	copier := fastcopy.New()
	for _, shape := range table4Shapes {
		chain := natChain(shape.count, shape.size)
		b.Run("Serialization/"+shape.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := seri.Copy(reg, chain); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("FastCopy/"+shape.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := copier.Copy(chain); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 5: HTTP server throughput ---------------------------------------
// Paper (pages/s): 10B IIS 801 / JWS 122 / IIS+JK 662; 100B 790/121/640;
// 1000B 759/96/616. Shapes to hold: bridge+J-Kernel within tens of percent
// of the native server; the all-interpreted server an order of magnitude
// slower. ns/op inverts to pages/sec (cmd/jkbench prints the table).

var table5Sizes = []int{10, 100, 1000}

func BenchmarkTable5_IIS_Static(b *testing.B) {
	for _, size := range table5Sizes {
		f := newTable5(b, size)
		h := httpStaticHandler(f, size)
		b.Run(sizeName(size), func(b *testing.B) {
			req := httptest.NewRequest("GET", "/index.html", nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != 200 {
					b.Fatal("bad status")
				}
			}
			reportPagesPerSec(b)
		})
	}
}

func BenchmarkTable5_IISJKernel_Bridge(b *testing.B) {
	for _, size := range table5Sizes {
		f := newTable5(b, size)
		b.Run(sizeName(size), func(b *testing.B) {
			req := httptest.NewRequest("GET", "/index.html", nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				f.bridge.ServeHTTP(rec, req)
				if rec.Code != 200 {
					b.Fatalf("bad status %d: %s", rec.Code, rec.Body.String())
				}
			}
			reportPagesPerSec(b)
		})
	}
}

func BenchmarkTable5_JWS_Interpreted(b *testing.B) {
	for _, size := range table5Sizes {
		f := newTable5(b, size)
		task := f.k.NewTask(f.jws.Domain, "bench")
		raw := []byte("GET /index.html HTTP/1.0\r\n\r\n")
		b.Run(sizeName(size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f.jws.HandleWith(task, raw); err != nil {
					b.Fatal(err)
				}
			}
			reportPagesPerSec(b)
		})
		task.Close()
	}
}

// --- Table 6: comparison with fast microkernels ----------------------------
// Paper (µs): L4 round-trip 1.82, Exokernel PCT r/t 2.40, Eros round-trip
// 4.90, J-Kernel 3-arg invocation 3.77 — all in one band.

func BenchmarkTable6_L4_RoundTripIPC(b *testing.B) {
	k := ukern.NewKernel()
	c := k.NewL4Pair()
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6_Exokernel_PCT(b *testing.B) {
	k := ukern.NewKernel()
	p := k.NewExoPair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Call(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6_Eros_RoundTripIPC(b *testing.B) {
	k := ukern.NewKernel()
	p := k.NewErosPair()
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Call(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6_JKernel_3ArgInvocation(b *testing.B) {
	f := newVMBench(b, vmkit.ProfileA)
	defer f.close()
	b.ResetTimer()
	f.run(b, "runLRMI3", b.N)
}

// --- Ablations beyond the paper's tables -----------------------------------

// Native-path LRMI vs the share-anything baseline: the cost of the
// J-Kernel's structure on the Go path.
type nullSvc struct{}

func (nullSvc) Null() error { return nil }

func BenchmarkAblation_NativeLRMI_Null(b *testing.B) {
	k := core.MustNew(core.Options{})
	server, _ := k.NewDomain(core.DomainConfig{Name: "s"})
	client, _ := k.NewDomain(core.DomainConfig{Name: "c"})
	cap, err := k.CreateNativeCapability(server, nullSvc{})
	if err != nil {
		b.Fatal(err)
	}
	task := k.NewTask(client, "b")
	defer task.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cap.Invoke("Null"); err != nil {
			b.Fatal(err)
		}
	}
}

// Remote null call: the same null capability invocation as
// BenchmarkAblation_NativeLRMI_Null, but the capability lives in a second
// kernel behind the wire protocol (two kernels in one process over a real
// socket, so the gap tracks protocol + syscall cost, the paper's Table 2
// vs Table 3 contrast; cmd/jkbench adds the true cross-process variant).
func benchRemoteNull(b *testing.B, network string) {
	server := core.MustNew(core.Options{})
	client := core.MustNew(core.Options{})
	sd, err := server.NewDomain(core.DomainConfig{Name: "svc"})
	if err != nil {
		b.Fatal(err)
	}
	cd, err := client.NewDomain(core.DomainConfig{Name: "app"})
	if err != nil {
		b.Fatal(err)
	}
	cap, err := server.CreateNativeCapability(sd, nullSvc{})
	if err != nil {
		b.Fatal(err)
	}
	if err := server.Export("null", cap); err != nil {
		b.Fatal(err)
	}
	addr := "127.0.0.1:0"
	if network == "unix" {
		addr = filepath.Join(b.TempDir(), "bench.sock")
	}
	ln, err := remote.Listen(server, network, addr)
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	conn, err := remote.Dial(client, network, ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	proxy, err := conn.Import("null")
	if err != nil {
		b.Fatal(err)
	}
	task := client.NewDetachedTask(cd, "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxy.InvokeFrom(task, "Null"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRemoteNullCall(b *testing.B) {
	b.Run("UnixSocket", func(b *testing.B) { benchRemoteNull(b, "unix") })
	b.Run("TCPLoopback", func(b *testing.B) { benchRemoteNull(b, "tcp") })
}

// InvokeFrom skips the goroutine-id thread lookup: how much of native LRMI
// is the lookup (the paper's "thread info lookup" row, native edition)?
func BenchmarkAblation_NativeLRMI_ExplicitTask(b *testing.B) {
	k := core.MustNew(core.Options{})
	server, _ := k.NewDomain(core.DomainConfig{Name: "s"})
	client, _ := k.NewDomain(core.DomainConfig{Name: "c"})
	cap, err := k.CreateNativeCapability(server, nullSvc{})
	if err != nil {
		b.Fatal(err)
	}
	task := k.NewTask(client, "b")
	defer task.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cap.InvokeFrom(task, "Null"); err != nil {
			b.Fatal(err)
		}
	}
}

// The §2 share-anything call: a plain method invocation, the fast and
// unsafe baseline that motivates the whole design.
func BenchmarkAblation_ShareAnything_DirectCall(b *testing.B) {
	s := oskit.InProc()
	for i := 0; i < b.N; i++ {
		inprocSink = s.Null(1)
	}
}

// Fast-copy cycle table on vs off (the paper: the hash table "slows down
// copying, though, so by default the copy code does not use a hash table").
func BenchmarkAblation_FastCopyTable(b *testing.B) {
	chain := natChain(10, 10)
	plain := fastcopy.New()
	table := fastcopy.New(fastcopy.WithCycleTable())
	b.Run("NoTable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plain.Copy(chain); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("WithTable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := table.Copy(chain); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Goroutine-id lookup cost: the native thread-info-lookup component.
func BenchmarkAblation_GoroutineIDLookup(b *testing.B) {
	k := core.MustNew(core.Options{})
	d, _ := k.NewDomain(core.DomainConfig{Name: "d"})
	task := k.NewTask(d, "b")
	defer task.Close()
	_ = task
	for i := 0; i < b.N; i++ {
		if gid := goroutineIDProbe(); gid == 0 {
			b.Fatal("no gid")
		}
	}
}
