// Package toolchain is the public facade over the CS314 course toolchain:
// the compiler, assembler, and linker components the paper's motivating
// servlets provided, plus an emulator for the C3 ISA they target.
package toolchain

import (
	"jkernel/internal/cs314"
	"jkernel/internal/httpd"
)

// Re-exported toolchain types.
type (
	// Object is a relocatable object file.
	Object = cs314.Object
	// Executable is a linked program image.
	Executable = cs314.Executable
	// Emulator executes C3 programs.
	Emulator = cs314.Emulator
)

// CompileMiniC compiles MiniC source to C3 assembly.
func CompileMiniC(src string) (string, error) { return cs314.CompileMiniC(src) }

// AssembleC3 assembles C3 assembly into an object file.
func AssembleC3(unit, src string) (*Object, error) { return cs314.AssembleC3(unit, src) }

// Link links objects into an executable (entry point: global "main").
func Link(objs ...*Object) (*Executable, error) { return cs314.Link(objs...) }

// RunProgram executes an executable, returning its printed output.
func RunProgram(exe *Executable, maxSteps int64) ([]int32, error) {
	return cs314.RunProgram(exe, maxSteps)
}

// EncodeObject / DecodeObject serialize object files for transport.
func EncodeObject(o *Object) []byte             { return cs314.EncodeObject(o) }
func DecodeObject(data []byte) (*Object, error) { return cs314.DecodeObject(data) }

// EncodeExecutable / DecodeExecutable serialize executables.
func EncodeExecutable(e *Executable) []byte             { return cs314.EncodeExecutable(e) }
func DecodeExecutable(data []byte) (*Executable, error) { return cs314.DecodeExecutable(data) }

// MountServlets mounts the four course servlets (compile, assemble, link,
// run) on a bridge under /cs314/.
func MountServlets(b *httpd.Bridge) error { return cs314.MountAll(b) }
