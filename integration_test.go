package jkernel

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"jkernel/servlet"
	"jkernel/toolchain"
)

// End-to-end: the extensible web server hosting the CS314 toolchain, a
// MiniC program flowing compile→assemble→link→run across four isolated
// servlet domains, then a servlet termination that leaves the rest
// serving. This is the examples' behavior, pinned as a test.
func TestIntegrationToolchainOverExtensibleServer(t *testing.T) {
	k := New(Options{})
	bridge, err := servlet.NewBridge(k)
	if err != nil {
		t.Fatal(err)
	}
	if err := toolchain.MountServlets(bridge); err != nil {
		t.Fatal(err)
	}

	post := func(path string, body []byte) (int, []byte) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		bridge.ServeHTTP(rec, req)
		res := rec.Result()
		out, _ := io.ReadAll(res.Body)
		return res.StatusCode, out
	}

	src := `
func square(x) { return x * x; }
func main() {
  var i = 1;
  while (i <= 5) {
    print(square(i));
    i = i + 1;
  }
}
`
	code, asm := post("/cs314/compile", []byte(src))
	if code != 200 {
		t.Fatalf("compile: %d %s", code, asm)
	}
	code, obj := post("/cs314/assemble?unit=prog", asm)
	if code != 200 {
		t.Fatalf("assemble: %d %s", code, obj)
	}
	code, exe := post("/cs314/link", servlet.EncodeBundle(map[string][]byte{"prog": obj}))
	if code != 200 {
		t.Fatalf("link: %d %s", code, exe)
	}
	code, out := post("/cs314/run", exe)
	if code != 200 {
		t.Fatalf("run: %d %s", code, out)
	}
	want := "1\n4\n9\n16\n25\n"
	if string(out) != want {
		t.Errorf("program output = %q, want %q", out, want)
	}

	// A compile-error path exercises failure isolation inside a servlet.
	code, msg := post("/cs314/compile", []byte("func broken( {"))
	if code != 422 || !strings.Contains(string(msg), "minic") {
		t.Errorf("bad source: %d %q", code, msg)
	}

	// Kill the compiler domain; the runner must keep serving.
	if err := bridge.TerminateServlet("cs314-compile"); err != nil {
		t.Fatal(err)
	}
	if code, _ := post("/cs314/compile", []byte(src)); code != 404 {
		t.Errorf("terminated servlet returned %d, want 404", code)
	}
	if code, _ := post("/cs314/run", exe); code != 200 {
		t.Errorf("runner harmed by compiler termination: %d", code)
	}
}

// End-to-end VM servlet upload through the admin surface, with state reset
// on hot-replace (the fresh-domain guarantee).
func TestIntegrationUploadAndHotReplace(t *testing.T) {
	k := New(Options{})
	bridge, err := servlet.NewBridge(k)
	if err != nil {
		t.Fatal(err)
	}
	classData := MustAssemble(`
.class Hit implements jk/servlet/Servlet
.field count I
.method service (Ljk/lang/String;Ljk/lang/String;[B)[B stack 8 locals 0
  load 0
  load 0
  getfield Hit.count:I
  iconst 1
  iadd
  putfield Hit.count:I
  load 0
  getfield Hit.count:I
  invokestatic jk/lang/String.valueOfInt:(I)Ljk/lang/String;
  invokevirtual jk/lang/String.getBytes:()[B
  retv
.end
`)
	bundle := servlet.EncodeBundle(map[string][]byte{"Hit": classData})
	do := func(method, path string, body []byte) (int, string) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(method, path, bytes.NewReader(body))
		bridge.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}

	if code, msg := do(http.MethodPost, "/admin/upload?name=h&prefix=/h&main=Hit", bundle); code != 200 {
		t.Fatalf("upload: %d %s", code, msg)
	}
	for want := 1; want <= 3; want++ {
		if _, body := do(http.MethodGet, "/h", nil); body != itoa(want) {
			t.Fatalf("hit %d: body=%q", want, body)
		}
	}
	if code, _ := do(http.MethodDelete, "/admin/servlet?name=h", nil); code != 200 {
		t.Fatal("terminate failed")
	}
	if code, msg := do(http.MethodPost, "/admin/upload?name=h2&prefix=/h&main=Hit", bundle); code != 200 {
		t.Fatalf("re-upload: %d %s", code, msg)
	}
	// Fresh domain, fresh state.
	if _, body := do(http.MethodGet, "/h", nil); body != "1" {
		t.Errorf("hot-replaced servlet kept state: %q", body)
	}
}

func itoa(n int) string {
	return strconv.Itoa(n)
}
