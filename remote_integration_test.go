package jkernel

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// remoteGreeter is the supervisor-side service the remote kernel imports.
type remoteGreeter struct {
	mu    sync.Mutex
	calls int
}

func (g *remoteGreeter) Greet(name string) (string, error) {
	g.mu.Lock()
	g.calls++
	g.mu.Unlock()
	return "hello " + name, nil
}

// TestRemoteRevocationPropagation is the facade-level end-to-end check:
// a capability exported by a supervisor kernel is imported and invoked by
// a second kernel over the wire; after the supervisor revokes it, the
// next remote invoke fails with the RevokedException analog (ErrRevoked),
// exactly as a local stub would.
func TestRemoteRevocationPropagation(t *testing.T) {
	sup := New(Options{})
	supDom, err := sup.NewDomain(DomainConfig{Name: "services"})
	if err != nil {
		t.Fatal(err)
	}
	cap, err := sup.CreateNativeCapability(supDom, &remoteGreeter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Export("greeter", cap); err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "sup.sock")
	ln, err := Listen(sup, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// The "worker" side: a second kernel (the wire path is identical
	// whether it lives in this process or another).
	worker := New(Options{})
	app, err := worker.NewDomain(DomainConfig{Name: "app"})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Connect(worker, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	proxy, err := conn.Import("greeter")
	if err != nil {
		t.Fatal(err)
	}
	task := worker.NewDetachedTask(app, "remote-client")

	res, err := proxy.InvokeFrom(task, "Greet", "cluster")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != any("hello cluster") {
		t.Fatalf("remote invoke: %#v", res)
	}

	// Revoke in the supervisor; the remote proxy must fault.
	cap.Revoke()
	if _, err := proxy.InvokeFrom(task, "Greet", "again"); !errors.Is(err, ErrRevoked) {
		t.Fatalf("invoke after supervisor revoke: %v", err)
	}
	// And the pushed revocation flips the proxy's state without a call.
	deadline := time.Now().Add(2 * time.Second)
	for !proxy.Revoked() {
		if time.Now().After(deadline) {
			t.Fatal("revocation never pushed to the remote proxy")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRemoteTypedBind drives the Bind stub path through the facade: a
// typed struct of funcs bound to a remote proxy is indistinguishable from
// one bound to a local capability.
func TestRemoteTypedBind(t *testing.T) {
	sup := New(Options{})
	supDom, err := sup.NewDomain(DomainConfig{Name: "services"})
	if err != nil {
		t.Fatal(err)
	}
	cap, err := sup.CreateNativeCapability(supDom, &remoteGreeter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Export("greeter", cap); err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "sup.sock")
	ln, err := Listen(sup, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	client := New(Options{})
	app, err := client.NewDomain(DomainConfig{Name: "app"})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Connect(client, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	proxy, err := conn.Import("greeter")
	if err != nil {
		t.Fatal(err)
	}

	task := client.NewTask(app, "typed")
	defer task.Close()
	var svc struct {
		Greet func(string) (string, error)
	}
	if err := proxy.Bind(&svc); err != nil {
		t.Fatal(err)
	}
	out, err := svc.Greet("typed client")
	if err != nil || out != "hello typed client" {
		t.Fatalf("typed remote stub: %q %v", out, err)
	}
}

// TestRemoteReleaseLifecycle drives the handle lifecycle through the
// facade: releasing an imported proxy drains the connection's tables on
// both ends without revoking the supervisor's capability, and a fresh
// import is a fresh grant.
func TestRemoteReleaseLifecycle(t *testing.T) {
	sup := New(Options{})
	supDom, err := sup.NewDomain(DomainConfig{Name: "services"})
	if err != nil {
		t.Fatal(err)
	}
	cap, err := sup.CreateNativeCapability(supDom, &remoteGreeter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Export("greeter", cap); err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "sup.sock")
	ln, err := Listen(sup, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	client := New(Options{})
	app, err := client.NewDomain(DomainConfig{Name: "app"})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Connect(client, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	proxy, err := conn.Import("greeter")
	if err != nil {
		t.Fatal(err)
	}
	task := client.NewDetachedTask(app, "release-client")
	if _, err := proxy.InvokeFrom(task, "Greet", "once"); err != nil {
		t.Fatal(err)
	}
	if got := conn.TableSizes(); got.Imports != 1 {
		t.Fatalf("before release: %+v", got)
	}

	if !ReleaseProxy(proxy) {
		t.Fatal("ReleaseProxy rejected a live wire proxy")
	}
	if _, err := proxy.InvokeFrom(task, "Greet", "late"); !errors.Is(err, ErrRevoked) {
		t.Fatalf("released proxy still invokable: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for conn.TableSizes() != (RemoteTableSizes{}) {
		if time.Now().After(deadline) {
			t.Fatalf("client tables never drained: %+v", conn.TableSizes())
		}
		time.Sleep(time.Millisecond)
	}
	if cap.Revoked() {
		t.Fatal("release revoked the supervisor's capability")
	}

	// The release returned the handle, not the grant.
	again, err := conn.Import("greeter")
	if err != nil {
		t.Fatal(err)
	}
	if res, err := again.InvokeFrom(task, "Greet", "twice"); err != nil || res[0] != any("hello twice") {
		t.Fatalf("re-import after release: %#v %v", res, err)
	}
}
