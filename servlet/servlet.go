// Package servlet is the public facade over the extensible web server of
// the paper's §4: a net/http front server hosting a bridge that forwards
// requests through LRMI into servlet protection domains. Servlets are
// either native Go objects or uploaded VM bytecode; either way each runs
// in its own domain, can be terminated and hot-replaced, and cannot crash
// its siblings or the server.
package servlet

import (
	"jkernel/internal/core"
	"jkernel/internal/httpd"
)

// Re-exported servlet API types.
type (
	// Request is the servlet-visible request (crosses domains by copy).
	Request = httpd.Request
	// Response is the servlet reply (crosses domains by copy).
	Response = httpd.Response
	// Servlet is the native servlet interface.
	Servlet = httpd.Servlet
	// Bridge connects a front server to servlet domains.
	Bridge = httpd.Bridge
	// Router maps URL prefixes to servlets.
	Router = httpd.Router
	// JWS is the all-interpreted baseline server.
	JWS = httpd.JWS
)

// NewBridge wires a bridge into a kernel.
func NewBridge(k *core.Kernel) (*Bridge, error) { return httpd.NewBridge(k) }

// NewJWS builds the all-interpreted server serving doc.
func NewJWS(k *core.Kernel, doc []byte) (*JWS, error) { return httpd.NewJWS(k, doc) }

// EncodeBundle packs class files for upload.
func EncodeBundle(bundle map[string][]byte) []byte { return httpd.EncodeBundle(bundle) }

// DecodeBundle unpacks an uploaded class bundle.
func DecodeBundle(raw []byte) (map[string][]byte, error) { return httpd.DecodeBundle(raw) }

// RegisterTypes registers the servlet types for cross-domain copying.
func RegisterTypes(k *core.Kernel) { httpd.RegisterTypes(k) }
