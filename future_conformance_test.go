package jkernel

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// Conformance table for future semantics, run against BOTH gate flavors —
// a local native gate and a remote proxy gate over a real wire — so the
// two invoke paths are proven equivalent:
//
//   - resolve: a future resolves with the call's results, idempotently;
//   - resolve-once: concurrent completion and cancellation settle on
//     exactly one stable outcome;
//   - fault propagation: callee failures surface exactly as from Invoke;
//   - cancel-after-revoke: a revocation fault is never overwritten by a
//     later Cancel;
//   - join-after-connection-loss: severing the capability's lifeline
//     (owner termination locally, connection loss remotely) resolves
//     every in-flight future — a join never hangs.

// conformSvc is the service under test. Hang blocks until release.
type conformSvc struct {
	releaseOnce sync.Once
	block       chan struct{}
}

func newConformSvc() *conformSvc { return &conformSvc{block: make(chan struct{})} }

func (s *conformSvc) release() { s.releaseOnce.Do(func() { close(s.block) }) }

func (s *conformSvc) Echo(x string) (string, error) { return x, nil }
func (s *conformSvc) Fail(msg string) error         { return errors.New(msg) }
func (s *conformSvc) Hang() error                   { <-s.block; return nil }

// futureGate is one flavor of capability under test.
type futureGate struct {
	cap    *Capability // caller-side handle: local capability or remote proxy
	task   *Task       // caller task
	revoke func()      // owner-side revocation of the origin capability
	sever  func()      // lifeline cut: owner termination / connection loss
}

// futureGateFlavors builds the same service behind a local gate and a
// remote proxy gate.
var futureGateFlavors = []struct {
	name  string
	setup func(t *testing.T, svc *conformSvc) *futureGate
}{
	{
		name: "local",
		setup: func(t *testing.T, svc *conformSvc) *futureGate {
			t.Helper()
			k := New(Options{})
			server, err := k.NewDomain(DomainConfig{Name: "server"})
			if err != nil {
				t.Fatal(err)
			}
			client, err := k.NewDomain(DomainConfig{Name: "client"})
			if err != nil {
				t.Fatal(err)
			}
			cap, err := k.CreateNativeCapability(server, svc)
			if err != nil {
				t.Fatal(err)
			}
			task := k.NewDetachedTask(client, "conformance")
			return &futureGate{
				cap:    cap,
				task:   task,
				revoke: cap.Revoke,
				sever:  func() { server.Terminate("conformance sever") },
			}
		},
	},
	{
		name: "remote",
		setup: func(t *testing.T, svc *conformSvc) *futureGate {
			t.Helper()
			sup := New(Options{})
			services, err := sup.NewDomain(DomainConfig{Name: "services"})
			if err != nil {
				t.Fatal(err)
			}
			origin, err := sup.CreateNativeCapability(services, svc)
			if err != nil {
				t.Fatal(err)
			}
			if err := sup.Export("conform", origin); err != nil {
				t.Fatal(err)
			}
			sock := filepath.Join(t.TempDir(), "conform.sock")
			ln, err := Listen(sup, "unix", sock)
			if err != nil {
				t.Fatal(err)
			}
			client := New(Options{})
			app, err := client.NewDomain(DomainConfig{Name: "app"})
			if err != nil {
				t.Fatal(err)
			}
			conn, err := Connect(client, "unix", sock)
			if err != nil {
				ln.Close()
				t.Fatal(err)
			}
			t.Cleanup(func() {
				conn.Close()
				ln.Close()
			})
			proxy, err := conn.Import("conform")
			if err != nil {
				t.Fatal(err)
			}
			task := client.NewDetachedTask(app, "conformance")
			return &futureGate{
				cap:    proxy,
				task:   task,
				revoke: origin.Revoke,
				sever:  func() { conn.Close() },
			}
		},
	},
}

// forEachGateFlavor runs one conformance case against both flavors.
func forEachGateFlavor(t *testing.T, run func(t *testing.T, g *futureGate, svc *conformSvc)) {
	for _, flavor := range futureGateFlavors {
		t.Run(flavor.name, func(t *testing.T) {
			svc := newConformSvc()
			t.Cleanup(svc.release)
			run(t, flavor.setup(t, svc), svc)
		})
	}
}

func TestFutureResolve(t *testing.T) {
	forEachGateFlavor(t, func(t *testing.T, g *futureGate, svc *conformSvc) {
		fut := g.cap.InvokeAsyncFrom(g.task, "Echo", "ping")
		res, err := fut.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0] != any("ping") {
			t.Fatalf("resolve: %#v", res)
		}
		if !fut.Resolved() {
			t.Fatal("Resolved false after Wait")
		}
		// Wait is idempotent, and Cancel after resolution is a no-op.
		fut.Cancel()
		res2, err2 := fut.Wait()
		if err2 != nil || len(res2) != 1 || res2[0] != any("ping") {
			t.Fatalf("post-cancel Wait changed outcome: %#v %v", res2, err2)
		}
	})
}

func TestFutureFaultPropagation(t *testing.T) {
	forEachGateFlavor(t, func(t *testing.T, g *futureGate, svc *conformSvc) {
		// A callee failure crosses as a copied RemoteError, exactly as from
		// a synchronous Invoke.
		_, err := g.cap.InvokeAsyncFrom(g.task, "Fail", "boom").Wait()
		var re *RemoteError
		if !errors.As(err, &re) || re.Msg != "boom" {
			t.Fatalf("callee failure: %v", err)
		}
		// An unknown method maps onto the same sentinel on both paths.
		_, err = g.cap.InvokeAsyncFrom(g.task, "Nope").Wait()
		if !errors.Is(err, ErrNoSuchMethod) {
			t.Fatalf("unknown method: %v", err)
		}
	})
}

func TestFutureResolveOnce(t *testing.T) {
	forEachGateFlavor(t, func(t *testing.T, g *futureGate, svc *conformSvc) {
		// Race completions against cancellations: each future must settle
		// exactly once, on either the result or ErrCancelled, and stay
		// settled.
		for i := 0; i < 20; i++ {
			fut := g.cap.InvokeAsyncFrom(g.task, "Echo", "race")
			var wg sync.WaitGroup
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					fut.Cancel()
				}()
			}
			res, err := fut.Wait()
			wg.Wait()
			switch {
			case err == nil:
				if len(res) != 1 || res[0] != any("race") {
					t.Fatalf("iteration %d: %#v", i, res)
				}
			case errors.Is(err, ErrCancelled):
			default:
				t.Fatalf("iteration %d: unexpected outcome %v", i, err)
			}
			res2, err2 := fut.Wait()
			if !errors.Is(err2, err) || len(res2) != len(res) {
				t.Fatalf("iteration %d: outcome not stable: (%#v, %v) then (%#v, %v)",
					i, res, err, res2, err2)
			}
		}
	})
}

func TestFutureCancelAfterRevoke(t *testing.T) {
	forEachGateFlavor(t, func(t *testing.T, g *futureGate, svc *conformSvc) {
		g.revoke()
		fut := g.cap.InvokeAsyncFrom(g.task, "Echo", "late")
		if _, err := fut.Wait(); !errors.Is(err, ErrRevoked) {
			t.Fatalf("invoke after revoke: %v", err)
		}
		// The revocation fault sticks: Cancel must not rewrite history.
		fut.Cancel()
		if _, err := fut.Wait(); !errors.Is(err, ErrRevoked) || errors.Is(err, ErrCancelled) {
			t.Fatalf("cancel overwrote the revocation fault: %v", err)
		}
	})
}

func TestFutureJoinAfterConnectionLoss(t *testing.T) {
	forEachGateFlavor(t, func(t *testing.T, g *futureGate, svc *conformSvc) {
		// Start a call that will never return on its own, then cut the
		// capability's lifeline under it.
		fut := g.cap.InvokeAsyncFrom(g.task, "Hang")
		select {
		case <-fut.Done():
			_, err := fut.Wait()
			t.Fatalf("future resolved before sever: %v", err)
		case <-time.After(20 * time.Millisecond):
		}
		g.sever()
		select {
		case <-fut.Done():
		case <-time.After(10 * time.Second):
			t.Fatal("join hung after sever")
		}
		_, err := fut.Wait()
		if !errors.Is(err, ErrRevoked) && !errors.Is(err, ErrDomainTerminated) {
			t.Fatalf("sever fault: %v", err)
		}
	})
}
